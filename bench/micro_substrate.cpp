// [MICRO] google-benchmark microbenchmarks of the EM substrate and the
// simulator building blocks: wall-clock cost of the pieces every
// experiment above is built from.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "em/disk_array.hpp"
#include "em/linked_buckets.hpp"
#include "em/striped_region.hpp"
#include "em/track_allocator.hpp"
#include "sim/context_store.hpp"
#include "sim/message_store.hpp"
#include "sim/routing.hpp"
#include "util/rng.hpp"

namespace {

using namespace embsp;

void BM_StripedRegionWrite(benchmark::State& state) {
  const std::size_t D = static_cast<std::size_t>(state.range(0));
  em::DiskArray disks(D, 4096);
  em::TrackAllocators alloc(D);
  auto region = em::StripedRegion::reserve(disks, alloc, 1024);
  std::vector<std::byte> buf(64 * 4096, std::byte{1});
  for (auto _ : state) {
    region.write_blocks(0, 64, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * 4096);
}
BENCHMARK(BM_StripedRegionWrite)->Arg(1)->Arg(4)->Arg(16);

void BM_StripedRegionRead(benchmark::State& state) {
  const std::size_t D = static_cast<std::size_t>(state.range(0));
  em::DiskArray disks(D, 4096);
  em::TrackAllocators alloc(D);
  auto region = em::StripedRegion::reserve(disks, alloc, 1024);
  std::vector<std::byte> buf(64 * 4096, std::byte{1});
  region.write_blocks(0, 64, buf);
  for (auto _ : state) {
    region.read_blocks(0, 64, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * 4096);
}
BENCHMARK(BM_StripedRegionRead)->Arg(1)->Arg(4)->Arg(16);

void BM_LinkedBucketCycle(benchmark::State& state) {
  const std::size_t D = static_cast<std::size_t>(state.range(0));
  em::DiskArray disks(D, 4096);
  em::TrackAllocators alloc(D);
  em::LinkedBuckets buckets(disks, alloc, D);
  util::Rng rng(1);
  std::vector<std::byte> block(4096, std::byte{2});
  std::vector<em::LinkedBuckets::OutBlock> out;
  for (std::size_t d = 0; d < D; ++d) {
    out.push_back({static_cast<std::uint32_t>(d), block});
  }
  for (auto _ : state) {
    buckets.write_cycle(out, rng);
    for (std::size_t d = 0; d < D; ++d) {
      buckets.drain_bucket(d, [](std::span<const std::byte>) {});
    }
  }
}
BENCHMARK(BM_LinkedBucketCycle)->Arg(2)->Arg(8);

// Track I/O on file backends, serial vs worker-pool engine.  Backends open
// O_DSYNC so each transfer is genuine device I/O — the worker pool's
// overlap shows up as higher throughput at D >= 4 (claim_disk_scaling
// [C-D2] reports the same comparison as a pass/fail shape check).
void BM_FileTrackIo(benchmark::State& state, em::IoEngine engine) {
  const std::size_t D = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kB = 1 << 16;
  const auto dir = std::filesystem::temp_directory_path();
  auto arr = em::make_disk_array(engine, D, kB, [&](std::size_t d) {
    const auto path =
        dir / ("embsp_micro_io_" + std::to_string(d) + ".bin");
    return em::make_file_backend(path.string(), /*keep=*/false,
                                 /*sync_writes=*/true);
  });
  std::vector<std::byte> buf(D * kB, std::byte{9});
  std::uint64_t track = 0;
  for (auto _ : state) {
    std::vector<em::WriteOp> writes;
    std::vector<em::ReadOp> reads;
    for (std::uint32_t d = 0; d < D; ++d) {
      writes.push_back(
          {d, track % 64, std::span<const std::byte>(buf).subspan(d * kB, kB)});
      reads.push_back(
          {d, track % 64, std::span<std::byte>(buf).subspan(d * kB, kB)});
    }
    arr->parallel_write(writes);
    arr->parallel_read(reads);
    ++track;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(D * kB));
}
void BM_FileTrackIoSerial(benchmark::State& state) {
  BM_FileTrackIo(state, em::IoEngine::serial);
}
void BM_FileTrackIoParallel(benchmark::State& state) {
  BM_FileTrackIo(state, em::IoEngine::parallel);
}
BENCHMARK(BM_FileTrackIoSerial)->Arg(1)->Arg(4)->Arg(8);
BENCHMARK(BM_FileTrackIoParallel)->Arg(1)->Arg(4)->Arg(8);

void BM_ContextSwap(benchmark::State& state) {
  em::DiskArray disks(4, 1024);
  em::TrackAllocators alloc(4);
  sim::ContextStore store(disks, alloc, 64, 900);
  std::vector<std::vector<std::byte>> payloads(
      16, std::vector<std::byte>(900, std::byte{3}));
  store.write(0, payloads);
  for (auto _ : state) {
    auto got = store.read(0, 16);
    store.write(0, got);
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_ContextSwap);

void BM_PackBlocks(benchmark::State& state) {
  std::vector<bsp::Message> msgs(64);
  for (std::uint32_t i = 0; i < msgs.size(); ++i) {
    msgs[i].src = i;
    msgs[i].dst = i;
    msgs[i].seq = i;
    msgs[i].payload.resize(100 + i);
  }
  std::vector<const bsp::Message*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  for (auto _ : state) {
    std::size_t blocks = 0;
    sim::pack_blocks(ptrs, 0, 1024,
                     [&](std::span<const std::byte>) { ++blocks; });
    benchmark::DoNotOptimize(blocks);
  }
}
BENCHMARK(BM_PackBlocks);

void BM_Reassemble(benchmark::State& state) {
  std::vector<bsp::Message> msgs(64);
  for (std::uint32_t i = 0; i < msgs.size(); ++i) {
    msgs[i].src = i;
    msgs[i].dst = 0;
    msgs[i].seq = i;
    msgs[i].payload.resize(100 + i, std::byte{5});
  }
  std::vector<const bsp::Message*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  std::vector<std::vector<std::byte>> blocks;
  sim::pack_blocks(ptrs, 0, 1024, [&](std::span<const std::byte> b) {
    blocks.emplace_back(b.begin(), b.end());
  });
  for (auto _ : state) {
    sim::Reassembler r;
    for (const auto& b : blocks) r.absorb(b, 0);
    auto out = r.take();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Reassemble);

void BM_MessageStoreRoundTrip(benchmark::State& state) {
  em::DiskArray disks(4, 1024);
  em::TrackAllocators alloc(4);
  sim::MessageStore store(disks, alloc,
                          sim::MessageStoreConfig{8, 64,
                                                  sim::RoutingMode::compact});
  util::Rng rng(7);
  std::vector<bsp::Message> msgs(32);
  for (std::uint32_t i = 0; i < msgs.size(); ++i) {
    msgs[i].src = i;
    msgs[i].dst = i % 16;
    msgs[i].seq = i;
    msgs[i].payload.resize(200, std::byte{6});
  }
  for (auto _ : state) {
    store.write_messages(msgs, [](std::uint32_t d) { return d / 2; }, rng);
    store.flush(rng);
    store.reorganize(rng);
    for (std::uint32_t g = 0; g < 8; ++g) {
      auto got = store.fetch_group(g);
      benchmark::DoNotOptimize(got);
    }
  }
}
BENCHMARK(BM_MessageStoreRoundTrip);

}  // namespace
