// [MICRO] google-benchmark microbenchmarks of the EM substrate and the
// simulator building blocks: wall-clock cost of the pieces every
// experiment above is built from.
//
// A custom main() runs the google-benchmark suite, then takes a handful of
// deterministic counted measurements — payload bytes copied on the owning
// vs the arena/MessageRef message path, and backend calls (syscalls on
// FileBackend) with track coalescing off vs on — and writes them to
// BENCH_micro_substrate.json so the copy/syscall reductions are plottable
// without scraping benchmark output.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>

#include "bench_util.hpp"
#include "em/disk_array.hpp"
#include "em/uring_backend.hpp"
#include "em/linked_buckets.hpp"
#include "em/striped_region.hpp"
#include "em/track_allocator.hpp"
#include "sim/context_store.hpp"
#include "sim/message_store.hpp"
#include "sim/routing.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace {

using namespace embsp;

void BM_StripedRegionWrite(benchmark::State& state) {
  const std::size_t D = static_cast<std::size_t>(state.range(0));
  em::DiskArray disks(D, 4096);
  em::TrackAllocators alloc(D);
  auto region = em::StripedRegion::reserve(disks, alloc, 1024);
  std::vector<std::byte> buf(64 * 4096, std::byte{1});
  for (auto _ : state) {
    region.write_blocks(0, 64, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * 4096);
}
BENCHMARK(BM_StripedRegionWrite)->Arg(1)->Arg(4)->Arg(16);

void BM_StripedRegionRead(benchmark::State& state) {
  const std::size_t D = static_cast<std::size_t>(state.range(0));
  em::DiskArray disks(D, 4096);
  em::TrackAllocators alloc(D);
  auto region = em::StripedRegion::reserve(disks, alloc, 1024);
  std::vector<std::byte> buf(64 * 4096, std::byte{1});
  region.write_blocks(0, 64, buf);
  for (auto _ : state) {
    region.read_blocks(0, 64, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * 4096);
}
BENCHMARK(BM_StripedRegionRead)->Arg(1)->Arg(4)->Arg(16);

void BM_LinkedBucketCycle(benchmark::State& state) {
  const std::size_t D = static_cast<std::size_t>(state.range(0));
  em::DiskArray disks(D, 4096);
  em::TrackAllocators alloc(D);
  em::LinkedBuckets buckets(disks, alloc, D);
  util::Rng rng(1);
  std::vector<std::byte> block(4096, std::byte{2});
  std::vector<em::LinkedBuckets::OutBlock> out;
  for (std::size_t d = 0; d < D; ++d) {
    out.push_back({static_cast<std::uint32_t>(d), block});
  }
  for (auto _ : state) {
    buckets.write_cycle(out, rng);
    for (std::size_t d = 0; d < D; ++d) {
      buckets.drain_bucket(d, [](std::span<const std::byte>) {});
    }
  }
}
BENCHMARK(BM_LinkedBucketCycle)->Arg(2)->Arg(8);

// Track I/O on file backends, serial vs worker-pool engine.  Backends open
// O_DSYNC so each transfer is genuine device I/O — the worker pool's
// overlap shows up as higher throughput at D >= 4 (claim_disk_scaling
// [C-D2] reports the same comparison as a pass/fail shape check).
void BM_FileTrackIo(benchmark::State& state, em::IoEngine engine) {
  const std::size_t D = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kB = 1 << 16;
  const auto dir = std::filesystem::temp_directory_path();
  auto arr = em::make_disk_array(engine, D, kB, [&](std::size_t d) {
    const auto path =
        dir / ("embsp_micro_io_" + std::to_string(d) + ".bin");
    return em::make_file_backend(path.string(), /*keep=*/false,
                                 /*sync_writes=*/true);
  });
  std::vector<std::byte> buf(D * kB, std::byte{9});
  std::uint64_t track = 0;
  for (auto _ : state) {
    std::vector<em::WriteOp> writes;
    std::vector<em::ReadOp> reads;
    for (std::uint32_t d = 0; d < D; ++d) {
      writes.push_back(
          {d, track % 64, std::span<const std::byte>(buf).subspan(d * kB, kB)});
      reads.push_back(
          {d, track % 64, std::span<std::byte>(buf).subspan(d * kB, kB)});
    }
    arr->parallel_write(writes);
    arr->parallel_read(reads);
    ++track;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(D * kB));
}
void BM_FileTrackIoSerial(benchmark::State& state) {
  BM_FileTrackIo(state, em::IoEngine::serial);
}
void BM_FileTrackIoParallel(benchmark::State& state) {
  BM_FileTrackIo(state, em::IoEngine::parallel);
}
BENCHMARK(BM_FileTrackIoSerial)->Arg(1)->Arg(4)->Arg(8);
BENCHMARK(BM_FileTrackIoParallel)->Arg(1)->Arg(4)->Arg(8);

// Same schedule on the kernel-native engine: each drive's worker drives an
// io_uring ring (SQE/CQE waves) instead of blocking p{read,write}.  Falls
// back to plain file backends when the kernel lacks io_uring, in which
// case these report worker-pool numbers.
void BM_FileTrackIoUringCfg(benchmark::State& state, bool direct) {
  const std::size_t D = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kB = 1 << 16;
  const auto dir = std::filesystem::temp_directory_path();
  em::UringConfig cfg;
  cfg.direct = direct;
  cfg.sync_writes = true;
  auto arr = em::make_disk_array(em::IoEngine::uring, D, kB, [&](std::size_t d) {
    const auto path =
        dir / ("embsp_micro_uio_" + std::to_string(d) + ".bin");
    return em::make_uring_file_backend(path.string(), /*keep=*/false, cfg);
  });
  std::vector<std::byte> buf(D * kB, std::byte{9});
  std::uint64_t track = 0;
  for (auto _ : state) {
    std::vector<em::WriteOp> writes;
    std::vector<em::ReadOp> reads;
    for (std::uint32_t d = 0; d < D; ++d) {
      writes.push_back(
          {d, track % 64, std::span<const std::byte>(buf).subspan(d * kB, kB)});
      reads.push_back(
          {d, track % 64, std::span<std::byte>(buf).subspan(d * kB, kB)});
    }
    arr->parallel_write(writes);
    arr->parallel_read(reads);
    ++track;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(D * kB));
}
void BM_FileTrackIoUring(benchmark::State& state) {
  BM_FileTrackIoUringCfg(state, /*direct=*/false);
}
void BM_FileTrackIoUringDirect(benchmark::State& state) {
  BM_FileTrackIoUringCfg(state, /*direct=*/true);
}
BENCHMARK(BM_FileTrackIoUring)->Arg(1)->Arg(4)->Arg(8);
BENCHMARK(BM_FileTrackIoUringDirect)->Arg(1)->Arg(4)->Arg(8);

void BM_ContextSwap(benchmark::State& state) {
  em::DiskArray disks(4, 1024);
  em::TrackAllocators alloc(4);
  sim::ContextStore store(disks, alloc, 64, 900);
  std::vector<std::vector<std::byte>> payloads(
      16, std::vector<std::byte>(900, std::byte{3}));
  store.write(0, payloads);
  for (auto _ : state) {
    auto got = store.read(0, 16);
    store.write(0, got);
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_ContextSwap);

void BM_PackBlocks(benchmark::State& state) {
  std::vector<bsp::Message> msgs(64);
  for (std::uint32_t i = 0; i < msgs.size(); ++i) {
    msgs[i].src = i;
    msgs[i].dst = i;
    msgs[i].seq = i;
    msgs[i].payload.resize(100 + i);
  }
  std::vector<const bsp::Message*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  for (auto _ : state) {
    std::size_t blocks = 0;
    sim::pack_blocks(ptrs, 0, 1024,
                     [&](std::span<const std::byte>) { ++blocks; });
    benchmark::DoNotOptimize(blocks);
  }
}
BENCHMARK(BM_PackBlocks);

void BM_Reassemble(benchmark::State& state) {
  std::vector<bsp::Message> msgs(64);
  for (std::uint32_t i = 0; i < msgs.size(); ++i) {
    msgs[i].src = i;
    msgs[i].dst = 0;
    msgs[i].seq = i;
    msgs[i].payload.resize(100 + i, std::byte{5});
  }
  std::vector<const bsp::Message*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  std::vector<std::vector<std::byte>> blocks;
  sim::pack_blocks(ptrs, 0, 1024, [&](std::span<const std::byte> b) {
    blocks.emplace_back(b.begin(), b.end());
  });
  for (auto _ : state) {
    sim::Reassembler r;
    for (const auto& b : blocks) r.absorb(b, 0);
    auto out = r.take();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Reassemble);

void BM_MessageStoreRoundTrip(benchmark::State& state) {
  em::DiskArray disks(4, 1024);
  em::TrackAllocators alloc(4);
  sim::MessageStore store(disks, alloc,
                          sim::MessageStoreConfig{8, 64,
                                                  sim::RoutingMode::compact});
  util::Rng rng(7);
  std::vector<bsp::Message> msgs(32);
  for (std::uint32_t i = 0; i < msgs.size(); ++i) {
    msgs[i].src = i;
    msgs[i].dst = i % 16;
    msgs[i].seq = i;
    msgs[i].payload.resize(200, std::byte{6});
  }
  for (auto _ : state) {
    store.write_messages(msgs, [](std::uint32_t d) { return d / 2; }, rng);
    store.flush(rng);
    store.reorganize(rng);
    for (std::uint32_t g = 0; g < 8; ++g) {
      auto got = store.fetch_group(g);
      benchmark::DoNotOptimize(got);
    }
  }
}
BENCHMARK(BM_MessageStoreRoundTrip);

// --- Copy-path microbenchmarks ----------------------------------------------
//
// The same message set travels pack -> reassemble -> deliver on the two
// payload representations.  The owning path materializes a std::vector per
// message at both ends; the ref path bump-allocates from an arena and hands
// out spans.

std::vector<bsp::Message> make_copy_path_messages(std::size_t n,
                                                  std::size_t payload) {
  std::vector<bsp::Message> msgs(n);
  for (std::uint32_t i = 0; i < msgs.size(); ++i) {
    msgs[i].src = i % 16;
    msgs[i].dst = i % 32;
    msgs[i].seq = i;
    msgs[i].payload.assign(payload, std::byte{static_cast<unsigned char>(i)});
  }
  return msgs;
}

void BM_MessagePathOwned(benchmark::State& state) {
  const auto msgs = make_copy_path_messages(256, 512);
  std::vector<const bsp::Message*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  std::vector<std::vector<std::byte>> blocks;
  for (auto _ : state) {
    blocks.clear();
    sim::pack_blocks(ptrs, 0, 1024, [&](std::span<const std::byte> b) {
      blocks.emplace_back(b.begin(), b.end());
    });
    sim::Reassembler r;
    for (const auto& b : blocks) r.absorb(b, 0);
    auto out = r.take();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 256 *
                          512);
}
BENCHMARK(BM_MessagePathOwned);

void BM_MessagePathRefs(benchmark::State& state) {
  const auto msgs = make_copy_path_messages(256, 512);
  std::vector<bsp::MessageRef> refs;
  for (const auto& m : msgs) refs.push_back({m.src, m.dst, m.seq, m.payload});
  std::vector<std::vector<std::byte>> blocks;
  util::Arena arena;
  for (auto _ : state) {
    blocks.clear();
    arena.reset();
    sim::pack_blocks(std::span<const bsp::MessageRef>(refs), 0, 1024,
                     [&](std::span<const std::byte> b) {
                       blocks.emplace_back(b.begin(), b.end());
                     });
    sim::Reassembler r(/*max_message_bytes=*/0, &arena);
    for (const auto& b : blocks) r.absorb(b, 0);
    auto out = r.take_refs();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 256 *
                          512);
}
BENCHMARK(BM_MessagePathRefs);

// Batched file I/O with and without track coalescing: the same 64-track
// run per disk issued as one vectored pwritev/preadv versus per-track
// pwrite/pread.
void BM_FileBatchIo(benchmark::State& state, bool coalesce) {
  constexpr std::size_t kD = 4;
  constexpr std::size_t kTracks = 64;
  constexpr std::size_t kB = 4096;
  const auto dir = std::filesystem::temp_directory_path();
  em::DiskArrayOptions opts;
  opts.coalesce = coalesce;
  auto arr = em::make_disk_array(
      em::IoEngine::serial, kD, kB,
      [&](std::size_t d) {
        const auto path =
            dir / ("embsp_micro_coal_" + std::to_string(d) + ".bin");
        return em::make_file_backend(path.string(), /*keep=*/false);
      },
      0, opts);
  std::vector<std::byte> buf(kD * kTracks * kB, std::byte{7});
  for (auto _ : state) {
    std::vector<em::WriteOp> writes;
    std::vector<em::ReadOp> reads;
    for (std::uint32_t d = 0; d < kD; ++d) {
      for (std::uint64_t t = 0; t < kTracks; ++t) {
        const auto off = (d * kTracks + t) * kB;
        writes.push_back(
            {d, t, std::span<const std::byte>(buf).subspan(off, kB)});
        reads.push_back({d, t, std::span<std::byte>(buf).subspan(off, kB)});
      }
    }
    arr->parallel_write_batch(writes, kTracks);
    arr->parallel_read_batch(reads, kTracks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(kD * kTracks * kB));
}
void BM_FileBatchIoScalar(benchmark::State& state) {
  BM_FileBatchIo(state, false);
}
void BM_FileBatchIoCoalesced(benchmark::State& state) {
  BM_FileBatchIo(state, true);
}
BENCHMARK(BM_FileBatchIoScalar);
BENCHMARK(BM_FileBatchIoCoalesced);

// --- BENCH_micro_substrate.json artifact -------------------------------------

/// Counts backend entry points: each read/write/read_vec/write_vec is one
/// call — on FileBackend each such call is one pread/pwrite/preadv/pwritev
/// syscall, so the counter is the syscall count of the transfer schedule.
class CountingBackend final : public em::Backend {
 public:
  CountingBackend(std::unique_ptr<em::Backend> inner, std::uint64_t* calls)
      : inner_(std::move(inner)), calls_(calls) {}
  void read(std::uint64_t offset, std::span<std::byte> dst) override {
    ++*calls_;
    inner_->read(offset, dst);
  }
  void write(std::uint64_t offset, std::span<const std::byte> src) override {
    ++*calls_;
    inner_->write(offset, src);
  }
  void read_vec(std::uint64_t offset,
                std::span<const std::span<std::byte>> dsts) override {
    ++*calls_;
    inner_->read_vec(offset, dsts);
  }
  void write_vec(std::uint64_t offset,
                 std::span<const std::span<const std::byte>> srcs) override {
    ++*calls_;
    inner_->write_vec(offset, srcs);
  }
  void flush() override { inner_->flush(); }
  [[nodiscard]] std::uint64_t size() const override { return inner_->size(); }

 private:
  std::unique_ptr<em::Backend> inner_;
  std::uint64_t* calls_;
};

double timed_ns(const std::function<void()>& fn, int reps) {
  fn();  // warm up (allocator, page cache)
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / reps;
}

void emit_artifact() {
  embsp::bench::JsonArtifact artifact("micro_substrate");

  // Copy path: payload bytes copied per superstep handoff, and wall clock.
  {
    const auto msgs = make_copy_path_messages(256, 512);
    std::vector<const bsp::Message*> ptrs;
    std::vector<bsp::MessageRef> refs;
    for (const auto& m : msgs) {
      ptrs.push_back(&m);
      refs.push_back({m.src, m.dst, m.seq, m.payload});
    }
    const double payload_bytes = 256.0 * 512.0;
    std::vector<std::vector<std::byte>> blocks;
    const double owned_ns = timed_ns(
        [&] {
          blocks.clear();
          sim::pack_blocks(ptrs, 0, 1024, [&](std::span<const std::byte> b) {
            blocks.emplace_back(b.begin(), b.end());
          });
          sim::Reassembler r;
          for (const auto& b : blocks) r.absorb(b, 0);
          auto out = r.take();
          benchmark::DoNotOptimize(out);
        },
        200);
    util::Arena arena;
    const double ref_ns = timed_ns(
        [&] {
          blocks.clear();
          arena.reset();
          sim::pack_blocks(std::span<const bsp::MessageRef>(refs), 0, 1024,
                           [&](std::span<const std::byte> b) {
                             blocks.emplace_back(b.begin(), b.end());
                           });
          sim::Reassembler r(0, &arena);
          for (const auto& b : blocks) r.absorb(b, 0);
          auto out = r.take_refs();
          benchmark::DoNotOptimize(out);
        },
        200);
    artifact.begin_case("copy_path");
    // take() copies every payload byte out of reassembly; take_refs() hands
    // out arena spans and copies none.
    artifact.metric("payload_bytes", payload_bytes);
    artifact.metric("bytes_copied_owned", payload_bytes);
    artifact.metric("bytes_copied_refs", 0.0);
    artifact.metric("owned_ns", owned_ns);
    artifact.metric("refs_ns", ref_ns);
    artifact.metric("speedup", owned_ns / ref_ns);
  }

  // Syscall count: the same batched 64-track-per-disk transfer schedule
  // with coalescing off (one backend call per track) vs on (one vectored
  // call per adjacent run).
  for (const bool coalesce : {false, true}) {
    constexpr std::size_t kD = 4;
    constexpr std::size_t kTracks = 64;
    constexpr std::size_t kB = 1024;
    std::uint64_t calls = 0;
    em::DiskArrayOptions opts;
    opts.coalesce = coalesce;
    auto arr = em::make_disk_array(
        em::IoEngine::serial, kD, kB,
        [&](std::size_t) {
          return std::make_unique<CountingBackend>(
              std::make_unique<em::MemoryBackend>(), &calls);
        },
        0, opts);
    std::vector<std::byte> buf(kD * kTracks * kB, std::byte{5});
    std::vector<em::WriteOp> writes;
    std::vector<em::ReadOp> reads;
    for (std::uint32_t d = 0; d < kD; ++d) {
      for (std::uint64_t t = 0; t < kTracks; ++t) {
        const auto off = (d * kTracks + t) * kB;
        writes.push_back(
            {d, t, std::span<const std::byte>(buf).subspan(off, kB)});
        reads.push_back({d, t, std::span<std::byte>(buf).subspan(off, kB)});
      }
    }
    arr->parallel_write_batch(writes, kTracks);
    arr->parallel_read_batch(reads, kTracks);
    std::uint64_t coalesced_tracks = 0;
    for (const auto& ds : arr->engine_stats().per_disk) {
      coalesced_tracks += ds.coalesced_tracks;
    }
    artifact.begin_case(coalesce ? "vectored_io_coalesced"
                                 : "vectored_io_scalar");
    artifact.metric("tracks_moved", 2.0 * kD * kTracks);
    artifact.metric("backend_calls", static_cast<double>(calls));
    artifact.metric("coalesced_tracks",
                    static_cast<double>(coalesced_tracks));
    artifact.metric("parallel_ios",
                    static_cast<double>(arr->stats().parallel_ios));
  }

  // I/O engine matrix: the same 64-track-per-disk batched schedule on the
  // worker-pool file engine and on the io_uring engine — buffered, with
  // O_DIRECT, and with registered (fixed) buffers.  `uring_rings == 0` in a
  // uring row means the kernel lacks io_uring and the run silently fell
  // back to worker-pool file I/O (the honest column, not a failure).
  {
    struct EngineCase {
      const char* name;
      bool uring;
      bool direct;
      bool registered;
    };
    const EngineCase engine_cases[] = {
        {"engine_worker_pool", false, false, false},
        {"engine_uring", true, false, false},
        {"engine_uring_direct", true, true, false},
        {"engine_uring_fixed", true, false, true},
    };
    constexpr std::size_t kD = 4;
    constexpr std::size_t kTracks = 64;
    constexpr std::size_t kB = 4096;
    const auto dir = std::filesystem::temp_directory_path();
    for (const auto& c : engine_cases) {
      std::vector<std::byte> buf(kD * kTracks * kB, std::byte{8});
      em::UringConfig ucfg;
      ucfg.direct = c.direct;
      auto arr = em::make_disk_array(
          c.uring ? em::IoEngine::uring : em::IoEngine::parallel, kD, kB,
          [&](std::size_t d) -> std::unique_ptr<em::Backend> {
            const auto path =
                dir / ("embsp_micro_eng_" + std::to_string(d) + ".bin");
            if (c.uring) {
              return em::make_uring_file_backend(path.string(),
                                                 /*keep=*/false, ucfg);
            }
            return em::make_file_backend(path.string(), /*keep=*/false);
          });
      if (c.registered) {
        const std::span<std::byte> region[] = {buf};
        (void)arr->register_io_buffers(region);
      }
      std::vector<em::WriteOp> writes;
      std::vector<em::ReadOp> reads;
      for (std::uint32_t d = 0; d < kD; ++d) {
        for (std::uint64_t t = 0; t < kTracks; ++t) {
          const auto off = (d * kTracks + t) * kB;
          writes.push_back(
              {d, t, std::span<const std::byte>(buf).subspan(off, kB)});
          reads.push_back({d, t, std::span<std::byte>(buf).subspan(off, kB)});
        }
      }
      const double ns = timed_ns(
          [&] {
            arr->parallel_write_batch(writes, kTracks);
            arr->parallel_read_batch(reads, kTracks);
          },
          20);
      if (c.registered) {
        (void)arr->register_io_buffers({});
      }
      arr->harvest_backend_stats();
      const auto& u = arr->engine_stats().uring;
      artifact.begin_case(c.name);
      artifact.metric("tracks_moved", 2.0 * kD * kTracks);
      artifact.metric("wall_ns", ns);
      artifact.metric("uring_rings", static_cast<double>(u.rings));
      artifact.metric("direct_rings", static_cast<double>(u.direct_rings));
      artifact.metric("sqes", static_cast<double>(u.sqes));
      artifact.metric("enters", static_cast<double>(u.enters));
      artifact.metric("fixed_ops", static_cast<double>(u.fixed_ops));
      artifact.metric("bounced_bytes", static_cast<double>(u.bounced_bytes));
    }
  }

  const auto path = artifact.write();
  if (!path.empty()) {
    std::cout << "artifact written to " << path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_artifact();
  return 0;
}
