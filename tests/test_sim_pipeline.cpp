// Pipelined group scheduler tests: the asynchronous submit/wait disk API
// and the double-buffered prefetch/write-behind schedule of both
// simulators.
//
// The central claim under test is BYTE-IDENTITY: for a fixed seed the
// pipelined schedule must produce the same collected states, the same
// SimResult costs and model I/O counts, and bit-for-bit the same disk
// images as the serial schedule — pipelining reorders only the *waiting*,
// never the submissions, placements or RNG draws.
//
// Carries the `pipeline` and `sanitize` ctest labels; the suite is the
// TSan workout for the per-disk worker queues and the compute pool.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "em/fault_backend.hpp"
#include "em/io_error.hpp"
#include "em/uring_backend.hpp"
#include "sim/par_simulator.hpp"
#include "sim/seq_simulator.hpp"
#include "test_programs.hpp"
#include "util/thread_pool.hpp"

namespace embsp {
namespace {

namespace fs = std::filesystem;
using embsp::testing::IrregularProgram;
using embsp::testing::PrefixSumProgram;
using embsp::testing::RingProgram;

// --- Async disk-array API ---------------------------------------------------

std::vector<std::byte> tagged_block(std::size_t size, std::uint64_t tag) {
  std::vector<std::byte> b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::byte>(
        static_cast<std::uint8_t>(tag * 37 + i * 11 + 5));
  }
  return b;
}

class AsyncDiskArray : public ::testing::TestWithParam<em::IoEngine> {};

TEST_P(AsyncDiskArray, SubmitWaitRoundTrip) {
  auto arr = em::make_disk_array(GetParam(), 4, 64);
  const auto b0 = tagged_block(64, 1);
  const auto b1 = tagged_block(64, 2);
  const em::WriteOp w[] = {{0, 3, b0}, {2, 5, b1}};
  const auto wt = arr->submit_write(w);

  std::vector<std::byte> r0(64), r1(64);
  // Same-disk FIFO: this read of (0,3)/(2,5) is submitted while the write
  // may still be in flight; per-drive queues guarantee it sees the data.
  const em::ReadOp r[] = {{0, 3, r0}, {2, 5, r1}};
  const auto rt = arr->submit_read(r);

  // Waiting out of submission order is allowed.
  arr->wait(rt);
  EXPECT_EQ(r0, b0);
  EXPECT_EQ(r1, b1);
  arr->wait(rt);  // settled token: no-op
  arr->wait(wt);

  // Each submitted batch is exactly one model parallel I/O, charged at
  // settlement.
  EXPECT_EQ(arr->stats().parallel_ios, 2u);
  EXPECT_EQ(arr->stats().blocks_written, 2u);
  EXPECT_EQ(arr->stats().blocks_read, 2u);
}

TEST_P(AsyncDiskArray, WaitAllSettlesInSubmissionOrder) {
  auto arr = em::make_disk_array(GetParam(), 4, 64);
  std::vector<std::vector<std::byte>> blocks;
  for (std::uint64_t t = 0; t < 6; ++t) {
    blocks.push_back(tagged_block(64, t + 10));
  }
  for (std::uint64_t t = 0; t < 6; ++t) {
    const em::WriteOp w[] = {
        {static_cast<std::uint32_t>(t % 4), t, blocks[t]}};
    (void)arr->submit_write(w);
  }
  arr->wait_all();
  EXPECT_EQ(arr->stats().parallel_ios, 6u);
  for (std::uint64_t t = 0; t < 6; ++t) {
    std::vector<std::byte> out(64);
    const em::ReadOp r[] = {{static_cast<std::uint32_t>(t % 4), t, out}};
    arr->parallel_read(r);
    EXPECT_EQ(out, blocks[t]) << t;
  }
}

TEST_P(AsyncDiskArray, DrainSwallowsErrorsAndChargesSuccesses) {
  // One injected persistent write fault; drain() must settle everything,
  // keep the process alive, and charge only the successful operation.
  em::FaultSpec spec;
  spec.seed = 7;
  spec.bursts.push_back({0u, 0u, 1000u});  // disk 0: every call faults
  em::DiskArrayOptions opts;
  opts.retry.max_attempts = 1;
  auto arr = em::make_disk_array(
      GetParam(), 2, 64,
      [&](std::size_t d) -> std::unique_ptr<em::Backend> {
        auto mem = std::make_unique<em::MemoryBackend>();
        if (d == 0) {
          return std::make_unique<em::FaultInjectingBackend>(
              std::move(mem), spec, /*sim_seed=*/0,
              static_cast<std::uint32_t>(d));
        }
        return mem;
      },
      0, opts);
  const auto good = tagged_block(64, 3);
  const auto bad = tagged_block(64, 4);
  const em::WriteOp ok_op[] = {{1, 0, good}};
  const em::WriteOp bad_op[] = {{0, 0, bad}};
  (void)arr->submit_write(ok_op);
  const auto bad_token = arr->submit_write(bad_op);
  arr->drain();  // must not throw
  EXPECT_EQ(arr->stats().parallel_ios, 1u);
  EXPECT_EQ(arr->stats().blocks_written, 1u);
  arr->wait(bad_token);  // already settled (swallowed): no-op

  // The swallowed error is not lost: drain() records it in the engine
  // stats so recovery-path cleanup failures stay observable.  Bursts
  // inject transient errors; with a retry budget of 1 the transient is
  // rethrown as-is, so that's the kind drain() swallows.
  EXPECT_EQ(arr->pending_ops(), 0u);
  EXPECT_EQ(arr->engine_stats().drain_errors, 1u);
  EXPECT_EQ(arr->engine_stats().last_drain_error_kind,
            static_cast<int>(em::IoError::Kind::transient));
  EXPECT_FALSE(arr->engine_stats().last_drain_error.empty());
}

TEST_P(AsyncDiskArray, DrainWithoutErrorsRecordsNothing) {
  auto arr = em::make_disk_array(GetParam(), 2, 64);
  const auto b = tagged_block(64, 9);
  const em::WriteOp w[] = {{0, 0, b}};
  (void)arr->submit_write(w);
  arr->drain();
  EXPECT_EQ(arr->engine_stats().drain_errors, 0u);
  EXPECT_EQ(arr->engine_stats().last_drain_error_kind, -1);
  EXPECT_TRUE(arr->engine_stats().last_drain_error.empty());
}

INSTANTIATE_TEST_SUITE_P(Engines, AsyncDiskArray,
                         ::testing::Values(em::IoEngine::serial,
                                           em::IoEngine::parallel,
                                           em::IoEngine::uring));

// --- Simulator parity helpers ----------------------------------------------

sim::SimConfig base_config(std::uint32_t p, std::uint32_t v) {
  sim::SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.bsp.v = v;
  cfg.machine.em.D = 4;
  cfg.machine.em.B = 128;
  cfg.machine.em.M = 1 << 20;
  cfg.mu = 2048;
  cfg.gamma = 8192;
  cfg.k = 4;  // fixed so serial and pipelined layouts match exactly
  return cfg;
}

sim::SimConfig pipelined(sim::SimConfig cfg, std::size_t threads = 1) {
  cfg.pipeline = true;
  cfg.io_engine = em::IoEngine::parallel;
  cfg.compute_threads = threads;
  return cfg;
}

void expect_same_costs(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.costs.supersteps.size(), b.costs.supersteps.size());
  for (std::size_t s = 0; s < a.costs.supersteps.size(); ++s) {
    const auto& ca = a.costs.supersteps[s];
    const auto& cb = b.costs.supersteps[s];
    EXPECT_EQ(ca.max_work, cb.max_work) << s;
    EXPECT_EQ(ca.total_work, cb.total_work) << s;
    EXPECT_EQ(ca.max_bytes_sent, cb.max_bytes_sent) << s;
    EXPECT_EQ(ca.max_bytes_received, cb.max_bytes_received) << s;
    EXPECT_EQ(ca.max_packets_sent, cb.max_packets_sent) << s;
    EXPECT_EQ(ca.max_packets_received, cb.max_packets_received) << s;
    EXPECT_EQ(ca.max_wire_sent, cb.max_wire_sent) << s;
    EXPECT_EQ(ca.total_bytes, cb.total_bytes) << s;
    EXPECT_EQ(ca.num_messages, cb.num_messages) << s;
  }
  EXPECT_EQ(a.total_io.parallel_ios, b.total_io.parallel_ios);
  EXPECT_EQ(a.total_io.blocks_read, b.total_io.blocks_read);
  EXPECT_EQ(a.total_io.blocks_written, b.total_io.blocks_written);
  EXPECT_EQ(a.total_io.bytes_read, b.total_io.bytes_read);
  EXPECT_EQ(a.total_io.bytes_written, b.total_io.bytes_written);
  EXPECT_EQ(a.max_tracks_per_disk, b.max_tracks_per_disk);
}

std::uint64_t fingerprint(const IrregularProgram::State& s) {
  return s.checksum;
}
std::uint64_t fingerprint(const PrefixSumProgram::State& s) {
  return s.prefix;
}
std::uint64_t fingerprint(const RingProgram::State& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (auto wdata : s.data) h = (h ^ wdata) * 1099511628211ULL;
  return h;
}

template <typename Prog>
std::vector<std::uint64_t> run_seq_collect(const Prog& prog,
                                           const sim::SimConfig& cfg,
                                           sim::SimResult& result,
                                           const std::string& file_tag = {}) {
  sim::SeqSimulator simr(
      cfg, file_tag.empty()
               ? std::function<std::unique_ptr<em::Backend>(std::size_t)>{}
               : [&](std::size_t d) {
                   return em::make_file_backend(
                       (fs::temp_directory_path() /
                        ("embsp_pipe_" + file_tag + "_" + std::to_string(d) +
                         ".bin"))
                           .string(),
                       /*keep=*/true);
                 });
  std::vector<std::uint64_t> out(cfg.machine.bsp.v);
  result = simr.run<Prog>(
      prog, [](std::uint32_t) { return typename Prog::State{}; },
      [&](std::uint32_t vp, typename Prog::State& s) {
        out[vp] = fingerprint(s);
      });
  return out;
}

void scrub_images(const std::string& tag) {
  for (std::size_t d = 0; d < 4; ++d) {
    fs::remove(fs::temp_directory_path() /
               ("embsp_pipe_" + tag + "_" + std::to_string(d) + ".bin"));
  }
}

std::vector<char> image_bytes(const std::string& tag, std::size_t d) {
  std::ifstream f(fs::temp_directory_path() /
                      ("embsp_pipe_" + tag + "_" + std::to_string(d) + ".bin"),
                  std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

// --- Sequential simulator parity --------------------------------------------

TEST(SimPipeline, SeqDiskImageByteIdenticalToSerialSchedule) {
  scrub_images("serial");
  scrub_images("piped");

  IrregularProgram prog;
  auto cfg = base_config(1, 16);
  sim::SimResult serial_res, piped_res;
  const auto serial = run_seq_collect(prog, cfg, serial_res, "serial");
  const auto piped =
      run_seq_collect(prog, pipelined(cfg), piped_res, "piped");

  EXPECT_EQ(serial, piped);
  expect_same_costs(serial_res, piped_res);
  for (std::size_t d = 0; d < 4; ++d) {
    const auto a = image_bytes("serial", d);
    const auto b = image_bytes("piped", d);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "disk image " << d
                    << " differs between serial and pipelined schedule";
  }
  scrub_images("serial");
  scrub_images("piped");
}

TEST(SimPipeline, SeqCostParityAcrossPrograms) {
  {
    IrregularProgram prog;
    prog.rounds = 4;
    auto cfg = base_config(1, 24);
    sim::SimResult a, b;
    EXPECT_EQ(run_seq_collect(prog, cfg, a),
              run_seq_collect(prog, pipelined(cfg), b));
    expect_same_costs(a, b);
  }
  {
    PrefixSumProgram prog;
    auto cfg = base_config(1, 16);
    sim::SimResult a, b;
    auto mk = [](std::uint32_t vp) {
      PrefixSumProgram::State s;
      s.value = vp * 3 + 1;
      return s;
    };
    std::vector<std::uint64_t> ra(16), rb(16);
    sim::SeqSimulator s1(cfg);
    a = s1.run<PrefixSumProgram>(prog, mk, [&](std::uint32_t vp, auto& s) {
      ra[vp] = s.prefix;
    });
    sim::SeqSimulator s2(pipelined(cfg, 2));
    b = s2.run<PrefixSumProgram>(prog, mk, [&](std::uint32_t vp, auto& s) {
      rb[vp] = s.prefix;
    });
    EXPECT_EQ(ra, rb);
    expect_same_costs(a, b);
  }
  {
    RingProgram prog;
    auto cfg = base_config(1, 8);
    sim::SimResult a, b;
    EXPECT_EQ(run_seq_collect(prog, cfg, a),
              run_seq_collect(prog, pipelined(cfg), b));
    expect_same_costs(a, b);
  }
}

TEST(SimPipeline, ComputeThreadsDoNotChangeResults) {
  IrregularProgram prog;
  prog.rounds = 4;
  const auto cfg = base_config(1, 32);
  sim::SimResult t1, t4;
  const auto r1 = run_seq_collect(prog, pipelined(cfg, 1), t1);
  const auto r4 = run_seq_collect(prog, pipelined(cfg, 4), t4);
  EXPECT_EQ(r1, r4);
  expect_same_costs(t1, t4);
}

TEST(SimPipeline, RoutingModesStayDeterministic) {
  for (const auto mode :
       {sim::RoutingMode::compact, sim::RoutingMode::padded,
        sim::RoutingMode::deterministic}) {
    IrregularProgram prog;
    auto cfg = base_config(1, 16);
    cfg.routing = mode;
    sim::SimResult a, b;
    EXPECT_EQ(run_seq_collect(prog, cfg, a),
              run_seq_collect(prog, pipelined(cfg, 2), b))
        << static_cast<int>(mode);
    expect_same_costs(a, b);
  }
}

// --- Zero-copy / coalescing parity -------------------------------------------

TEST(SimPipeline, ZeroCopyOffMatchesOnByteForByte) {
  // The arena/MessageRef path must be indistinguishable from the legacy
  // copying path: same program results, same model costs, and bit-for-bit
  // the same disk images for a fixed seed.
  scrub_images("zc_on");
  scrub_images("zc_off");
  IrregularProgram prog;
  prog.rounds = 4;
  auto on_cfg = base_config(1, 24);  // zero_copy defaults to true
  auto off_cfg = on_cfg;
  off_cfg.zero_copy = false;
  sim::SimResult on_res, off_res;
  const auto on = run_seq_collect(prog, on_cfg, on_res, "zc_on");
  const auto off = run_seq_collect(prog, off_cfg, off_res, "zc_off");
  EXPECT_EQ(on, off);
  expect_same_costs(on_res, off_res);
  for (std::size_t d = 0; d < 4; ++d) {
    const auto a = image_bytes("zc_on", d);
    const auto b = image_bytes("zc_off", d);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "disk image " << d
                    << " differs between zero-copy and copying path";
  }
  scrub_images("zc_on");
  scrub_images("zc_off");
}

TEST(SimPipeline, CoalesceOffMatchesOnByteForByte) {
  // Track coalescing is purely physical: with it disabled the same batched
  // submissions run track-by-track, and nothing model-visible may change.
  scrub_images("co_on");
  scrub_images("co_off");
  IrregularProgram prog;
  auto on_cfg = pipelined(base_config(1, 16));  // coalesce_io defaults true
  auto off_cfg = on_cfg;
  off_cfg.coalesce_io = false;
  sim::SimResult on_res, off_res;
  const auto on = run_seq_collect(prog, on_cfg, on_res, "co_on");
  const auto off = run_seq_collect(prog, off_cfg, off_res, "co_off");
  EXPECT_EQ(on, off);
  expect_same_costs(on_res, off_res);
  for (std::size_t d = 0; d < 4; ++d) {
    const auto a = image_bytes("co_on", d);
    const auto b = image_bytes("co_off", d);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "disk image " << d << " differs with coalescing";
  }
  scrub_images("co_on");
  scrub_images("co_off");
}

TEST(SimPipeline, AutoRoutingMatchesCompactWithFewerIos) {
  // base_config's groups fit the staging budget, so `automatic` must take
  // the in-memory delivery path: identical program results, strictly fewer
  // parallel I/Os than compact (no Algorithm 2 reorganization, no fetch
  // reads).  Equality of I/O counts would mean the fast path never engaged.
  IrregularProgram prog;
  prog.rounds = 4;
  auto compact_cfg = base_config(1, 24);
  compact_cfg.routing = sim::RoutingMode::compact;
  auto auto_cfg = compact_cfg;
  auto_cfg.routing = sim::RoutingMode::automatic;
  sim::SimResult rc, ra;
  EXPECT_EQ(run_seq_collect(prog, compact_cfg, rc),
            run_seq_collect(prog, auto_cfg, ra));
  ASSERT_EQ(rc.costs.supersteps.size(), ra.costs.supersteps.size());
  for (std::size_t s = 0; s < rc.costs.supersteps.size(); ++s) {
    // Transport-independent communication costs are unchanged...
    EXPECT_EQ(rc.costs.supersteps[s].total_bytes,
              ra.costs.supersteps[s].total_bytes)
        << s;
    EXPECT_EQ(rc.costs.supersteps[s].num_messages,
              ra.costs.supersteps[s].num_messages)
        << s;
  }
  // ...but the routing I/O is gone.
  EXPECT_LT(ra.total_io.parallel_ios, rc.total_io.parallel_ios);
  EXPECT_LT(ra.total_io.blocks_read, rc.total_io.blocks_read);

  // Pipelined schedule agrees with the blocking one in auto mode too.
  sim::SimResult rp;
  EXPECT_EQ(run_seq_collect(prog, pipelined(auto_cfg, 2), rp),
            run_seq_collect(prog, auto_cfg, ra));
  expect_same_costs(ra, rp);
}

// --- Fault injection and recovery under pipelining ---------------------------

sim::SimConfig faulty(sim::SimConfig cfg, double rate) {
  cfg.faults.seed = 2024;
  cfg.faults.read_error_rate = rate;
  cfg.faults.write_error_rate = rate;
  cfg.faults.torn_write_rate = rate / 2;
  cfg.faults.bit_flip_rate = rate / 2;
  cfg.block_checksums = true;
  cfg.superstep_recovery = true;
  return cfg;
}

TEST(SimPipeline, FaultScheduleAndRecoveryMatchSerial) {
  // The fault schedule is keyed on each disk's call sequence (fixed draw
  // count per call).  Pipelining issues group g+1's prefetch reads before
  // group g's writes, so call N on a disk may be a read where the serial
  // schedule had a write — a fault re-attributes between op kinds — but
  // the same call indices fault (rates are kind-symmetric here), every
  // fault costs exactly one retry call in both schedules, and the
  // recovered results and model costs match the serial schedule's.
  IrregularProgram prog;
  const auto cfg = faulty(base_config(1, 16), 0.01);
  sim::SimResult rs, rp;
  const auto ss = run_seq_collect(prog, cfg, rs);
  const auto sp = run_seq_collect(prog, pipelined(cfg), rp);
  EXPECT_EQ(ss, sp);
  EXPECT_GT(rp.recovery.faults.total(), 0u);
  EXPECT_EQ(rs.recovery.faults.read_errors + rs.recovery.faults.write_errors,
            rp.recovery.faults.read_errors + rp.recovery.faults.write_errors);
  EXPECT_EQ(rs.recovery.faults.torn_writes + rs.recovery.faults.bit_flips,
            rp.recovery.faults.torn_writes + rp.recovery.faults.bit_flips);
  EXPECT_EQ(rs.recovery.io_retries, rp.recovery.io_retries);
  expect_same_costs(rs, rp);
}

TEST(SimPipeline, BurstRollbackQuiescesAndRecovers) {
  // Exhaust the retry budget mid-run while transfers are in flight: the
  // rollback must quiesce the pipeline (tokens settled, staged cycles
  // abandoned) before restoring snapshots, then replay to the clean answer.
  IrregularProgram prog;
  auto clean_cfg = base_config(1, 16);
  clean_cfg.superstep_recovery = true;
  clean_cfg.block_checksums = true;
  sim::SimResult clean_res;
  const auto expected = run_seq_collect(prog, pipelined(clean_cfg), clean_res);
  const std::uint64_t calls =
      clean_res.total_io.blocks_read + clean_res.total_io.blocks_written;
  ASSERT_GT(calls, 40u);

  auto cfg = clean_cfg;
  cfg.faults.seed = 5;
  cfg.faults.bursts.push_back(
      {0u, calls / 8,
       static_cast<std::uint64_t>(cfg.retry.max_attempts)});
  sim::SimResult res;
  const auto got = run_seq_collect(prog, pipelined(cfg, 2), res);
  EXPECT_EQ(got, expected);
  EXPECT_GE(res.recovery.io_giveups, 1u);
  EXPECT_GE(res.recovery.total_rollbacks(), 1u);
}

// --- Layout bound ------------------------------------------------------------

TEST(SimPipeline, DoubleBufferingTightensLayoutBound) {
  // slot = 2048+4 rounded to 128-byte blocks = 2176; pick k so that one
  // resident group fits M but two do not.
  auto cfg = base_config(1, 64);
  cfg.machine.em.M = 1 << 15;  // 32 KiB
  const std::size_t slot = 2176;
  cfg.k = (cfg.machine.em.M / slot);  // fits once: k*slot <= M < 2*k*slot
  ASSERT_GT(cfg.k * slot * 2, cfg.machine.em.M);
  EXPECT_NO_THROW(sim::SimLayout::compute(cfg, cfg.machine.bsp.v));
  cfg.pipeline = true;
  EXPECT_THROW(sim::SimLayout::compute(cfg, cfg.machine.bsp.v),
               sim::LayoutError);
}

// --- Parallel simulator -------------------------------------------------------

template <typename Prog>
std::vector<std::uint64_t> run_par_collect(const Prog& prog,
                                           const sim::SimConfig& cfg,
                                           sim::SimResult& result) {
  sim::ParSimulator simr(cfg);
  std::vector<std::uint64_t> out(cfg.machine.bsp.v);
  result = simr.run<Prog>(
      prog, [](std::uint32_t) { return typename Prog::State{}; },
      [&](std::uint32_t vp, typename Prog::State& s) {
        out[vp] = fingerprint(s);
      });
  return out;
}

TEST(SimPipeline, ParPipelinedMatchesBaseline) {
  IrregularProgram prog;
  auto cfg = base_config(2, 32);
  sim::SimResult base, piped;
  const auto a = run_par_collect(prog, cfg, base);
  const auto b = run_par_collect(prog, pipelined(cfg, 3), piped);
  EXPECT_EQ(a, b);
  expect_same_costs(base, piped);
}

TEST(SimPipeline, ParZeroCopyOffMatchesOn) {
  IrregularProgram prog;
  auto on_cfg = base_config(2, 32);  // zero_copy defaults to true
  auto off_cfg = on_cfg;
  off_cfg.zero_copy = false;
  sim::SimResult on_res, off_res;
  const auto a = run_par_collect(prog, on_cfg, on_res);
  const auto b = run_par_collect(prog, off_cfg, off_res);
  EXPECT_EQ(a, b);
  expect_same_costs(on_res, off_res);
}

TEST(SimPipeline, ParAbortPathStaysClean) {
  // A program that trips the gamma budget mid-superstep while transfers
  // are in flight: the cooperative abort must drain before unwinding (no
  // use-after-free under ASan/TSan) and surface the original error.
  struct GreedyProgram {
    struct State {
      std::uint64_t x = 0;
      void serialize(util::Writer& w) const { w.write(x); }
      void deserialize(util::Reader& r) { x = r.read<std::uint64_t>(); }
    };
    bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                   const bsp::Inbox&, bsp::Outbox& out) const {
      if (step == 1 && env.pid == 3) {
        // Far past gamma = 8192 wire bytes.
        std::vector<std::uint64_t> huge(4096, s.x);
        for (int rep = 0; rep < 8; ++rep) {
          out.send_vector((env.pid + 1) % env.nprocs, huge);
        }
      } else {
        out.send_value((env.pid + 1) % env.nprocs, s.x);
      }
      ++s.x;
      return step < 2;
    }
  };
  auto cfg = base_config(2, 32);
  sim::ParSimulator simr(pipelined(cfg, 2));
  EXPECT_THROW(
      simr.run<GreedyProgram>(
          GreedyProgram{},
          [](std::uint32_t) { return GreedyProgram::State{}; },
          [](std::uint32_t, GreedyProgram::State&) {}),
      std::runtime_error);
}

// --- Abort-path quiesce -------------------------------------------------------

// A user superstep that throws mid-run while the pipelined schedule holds
// prefetched reads and write-behind tokens in flight.
struct ThrowingProgram {
  struct State {
    std::uint64_t x = 0;
    void serialize(util::Writer& w) const { w.write(x); }
    void deserialize(util::Reader& r) { x = r.read<std::uint64_t>(); }
  };
  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox&, bsp::Outbox& out) const {
    if (step == 1 && env.pid == 2) {
      throw std::runtime_error("superstep exploded");
    }
    out.send_value((env.pid + 1) % env.nprocs, s.x);
    ++s.x;
    return step < 3;
  }
};

TEST(SimPipeline, SeqThrowingSuperstepQuiescesPipeline) {
  // The rethrow must happen only after every in-flight token has settled:
  // no pending operations may survive the unwind, for any compute width.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sim::SeqSimulator simr(pipelined(base_config(1, 16), threads));
    try {
      simr.run<ThrowingProgram>(
          ThrowingProgram{},
          [](std::uint32_t) { return ThrowingProgram::State{}; },
          [](std::uint32_t, ThrowingProgram::State&) {});
      FAIL() << "expected the superstep error to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "superstep exploded");
    }
    EXPECT_EQ(simr.disks().pending_ops(), 0u)
        << "abort path left tokens in flight (threads=" << threads << ")";
  }
}

TEST(SimPipeline, ParThrowingSuperstepQuiescesPipeline) {
  sim::ParSimulator simr(pipelined(base_config(2, 32), 2));
  try {
    simr.run<ThrowingProgram>(
        ThrowingProgram{},
        [](std::uint32_t) { return ThrowingProgram::State{}; },
        [](std::uint32_t, ThrowingProgram::State&) {});
    FAIL() << "expected the superstep error to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "superstep exploded");
  }
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(simr.disks(i).pending_ops(), 0u) << "rank " << i;
  }
}

// --- Cross-engine parity: worker-pool vs io_uring -----------------------------

// Runs the program with cfg.io_engine = uring over uring-backed (or, where
// the kernel lacks io_uring, transparently file-backed) keep=true images.
template <typename Prog>
std::vector<std::uint64_t> run_seq_collect_uring(const Prog& prog,
                                                 sim::SimConfig cfg,
                                                 sim::SimResult& result,
                                                 const std::string& file_tag,
                                                 em::UringConfig ucfg = {}) {
  cfg.io_engine = em::IoEngine::uring;
  sim::SeqSimulator simr(cfg, [&](std::size_t d) {
    return em::make_uring_file_backend(
        (fs::temp_directory_path() /
         ("embsp_pipe_" + file_tag + "_" + std::to_string(d) + ".bin"))
            .string(),
        /*keep=*/true, ucfg);
  });
  std::vector<std::uint64_t> out(cfg.machine.bsp.v);
  result = simr.run<Prog>(
      prog, [](std::uint32_t) { return typename Prog::State{}; },
      [&](std::uint32_t vp, typename Prog::State& s) {
        out[vp] = fingerprint(s);
      });
  return out;
}

TEST(SimPipeline, UringEngineMatchesWorkerPoolByteForByte) {
  // The engine matrix: worker-pool file I/O vs kernel-native uring I/O,
  // with coalescing on and off, must agree on program results, model
  // costs, and bit-for-bit the disk images.  The uring factory falls back
  // to plain file I/O when the kernel lacks io_uring, so the comparison
  // is valid (if then trivial) everywhere.
  for (const bool coalesce : {true, false}) {
    scrub_images("eng_pool");
    scrub_images("eng_uring");
    IrregularProgram prog;
    prog.rounds = 4;
    auto cfg = pipelined(base_config(1, 24));
    cfg.coalesce_io = coalesce;
    sim::SimResult pool_res, uring_res;
    const auto pool = run_seq_collect(prog, cfg, pool_res, "eng_pool");
    const auto uring =
        run_seq_collect_uring(prog, cfg, uring_res, "eng_uring");
    EXPECT_EQ(pool, uring) << "coalesce=" << coalesce;
    expect_same_costs(pool_res, uring_res);
    for (std::size_t d = 0; d < 4; ++d) {
      const auto a = image_bytes("eng_pool", d);
      const auto b = image_bytes("eng_uring", d);
      ASSERT_FALSE(a.empty());
      EXPECT_EQ(a, b) << "disk image " << d
                      << " differs between engines (coalesce=" << coalesce
                      << ")";
    }
    scrub_images("eng_pool");
    scrub_images("eng_uring");
  }
}

TEST(SimPipeline, UringEngineDirectIoMatchesBuffered) {
  // O_DIRECT routes transfers through the aligned staging path; nothing
  // model- or byte-visible may change.  Where the filesystem refuses
  // O_DIRECT (tmpfs) the backend degrades to buffered I/O and the test
  // still checks engine parity.
  scrub_images("eng_buf");
  scrub_images("eng_dir");
  IrregularProgram prog;
  auto cfg = pipelined(base_config(1, 16));
  em::UringConfig direct_cfg;
  direct_cfg.direct = true;
  sim::SimResult buf_res, dir_res;
  const auto buf = run_seq_collect_uring(prog, cfg, buf_res, "eng_buf");
  const auto dir =
      run_seq_collect_uring(prog, cfg, dir_res, "eng_dir", direct_cfg);
  EXPECT_EQ(buf, dir);
  expect_same_costs(buf_res, dir_res);
  for (std::size_t d = 0; d < 4; ++d) {
    const auto a = image_bytes("eng_buf", d);
    const auto b = image_bytes("eng_dir", d);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "disk image " << d << " differs under O_DIRECT";
  }
  scrub_images("eng_buf");
  scrub_images("eng_dir");
}

TEST(SimPipeline, UringScratchEngineMatchesDefault) {
  // End-to-end default path: io_engine = uring with no explicit backend
  // factory uses uring scratch files (disk_dir) instead of memory, and
  // must reproduce the default engine's results and costs exactly.
  IrregularProgram prog;
  auto cfg = base_config(1, 16);
  sim::SimResult mem_res, uring_res;
  const auto mem = run_seq_collect(prog, cfg, mem_res);
  auto ucfg = pipelined(cfg);
  ucfg.io_engine = em::IoEngine::uring;
  std::vector<std::uint64_t> out(ucfg.machine.bsp.v);
  sim::SeqSimulator simr(ucfg);
  uring_res = simr.run<IrregularProgram>(
      prog, [](std::uint32_t) { return IrregularProgram::State{}; },
      [&](std::uint32_t vp, IrregularProgram::State& s) {
        out[vp] = fingerprint(s);
      });
  EXPECT_EQ(mem, out);
  expect_same_costs(mem_res, uring_res);
}

// --- Overlap instrumentation --------------------------------------------------

TEST(SimPipeline, OverlapRatioStaysInRange) {
  IrregularProgram prog;
  const auto cfg = base_config(1, 16);
  sim::SimResult serial_res, piped_res;
  run_seq_collect(prog, cfg, serial_res);
  run_seq_collect(prog, pipelined(cfg), piped_res);
  EXPECT_GE(serial_res.overlap_ratio, 0.0);
  EXPECT_LE(serial_res.overlap_ratio, 1.0);
  EXPECT_GE(piped_res.overlap_ratio, 0.0);
  EXPECT_LE(piped_res.overlap_ratio, 1.0);
}

// --- Compute pool -------------------------------------------------------------

TEST(ComputePool, RunsEveryIndexExactlyOnce) {
  util::ComputePool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.run(257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
  EXPECT_EQ(pool.width(), 4u);
}

TEST(ComputePool, RethrowsLowestIndexError) {
  util::ComputePool pool(3);
  try {
    pool.run(64, [&](std::size_t i) {
      if (i % 7 == 3) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
  // The pool survives a throwing job.
  std::atomic<int> n{0};
  pool.run(16, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
}

TEST(ComputePool, ZeroThreadsRunsInline) {
  util::ComputePool pool(0);
  std::vector<int> order;
  pool.run(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ComputePool, DegenerateRunsStayOnCallerThread) {
  // A width-1 pool, and any single-task run, must execute entirely on the
  // calling thread — no wakeup, no handoff.  compute_threads=1 configs hit
  // this on every superstep, so the fast path is the common path.
  const auto caller = std::this_thread::get_id();
  {
    util::ComputePool pool(0);
    std::vector<std::thread::id> ran;
    pool.run(4, [&](std::size_t) { ran.push_back(std::this_thread::get_id()); });
    ASSERT_EQ(ran.size(), 4u);
    for (const auto& id : ran) EXPECT_EQ(id, caller);
  }
  {
    util::ComputePool pool(3);  // workers exist but must not be woken
    std::thread::id ran;
    pool.run(1, [&](std::size_t) { ran = std::this_thread::get_id(); });
    EXPECT_EQ(ran, caller);
  }
}

}  // namespace
}  // namespace embsp
