#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "em/disk_array.hpp"
#include "em/io_error.hpp"
#include "sim/context_store.hpp"
#include "sim/message_store.hpp"
#include "sim/routing.hpp"
#include "util/rng.hpp"

namespace embsp::sim {
namespace {

bsp::Message make_msg(std::uint32_t src, std::uint32_t dst, std::uint32_t seq,
                      std::size_t len) {
  bsp::Message m;
  m.src = src;
  m.dst = dst;
  m.seq = seq;
  m.payload.resize(len);
  for (std::size_t i = 0; i < len; ++i) {
    m.payload[i] =
        static_cast<std::byte>(static_cast<std::uint8_t>(src * 31 + seq + i));
  }
  return m;
}

std::vector<bsp::Message> pack_and_reassemble(
    const std::vector<bsp::Message>& msgs, std::size_t block_size,
    bool shuffle_blocks) {
  std::vector<const bsp::Message*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  std::vector<std::vector<std::byte>> blocks;
  pack_blocks(ptrs, 0, block_size, [&](std::span<const std::byte> b) {
    blocks.emplace_back(b.begin(), b.end());
  });
  if (shuffle_blocks) {
    util::Rng rng(77);
    for (std::size_t i = blocks.size(); i > 1; --i) {
      std::swap(blocks[i - 1], blocks[rng.below(i)]);
    }
  }
  Reassembler r;
  for (const auto& b : blocks) r.absorb(b, 0);
  return r.take();
}

void expect_same_messages(std::vector<bsp::Message> got,
                          std::vector<bsp::Message> want) {
  auto key = [](const bsp::Message& m) {
    return std::make_pair(m.src, m.seq);
  };
  auto cmp = [&](const bsp::Message& a, const bsp::Message& b) {
    return key(a) < key(b);
  };
  std::sort(got.begin(), got.end(), cmp);
  std::sort(want.begin(), want.end(), cmp);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].src, want[i].src);
    EXPECT_EQ(got[i].dst, want[i].dst);
    EXPECT_EQ(got[i].seq, want[i].seq);
    EXPECT_EQ(got[i].payload, want[i].payload);
  }
}

TEST(BlockFormat, SingleSmallMessage) {
  auto msgs = std::vector<bsp::Message>{make_msg(1, 2, 0, 10)};
  expect_same_messages(pack_and_reassemble(msgs, 128, false), msgs);
}

TEST(BlockFormat, EmptyMessage) {
  auto msgs = std::vector<bsp::Message>{make_msg(3, 4, 0, 0)};
  expect_same_messages(pack_and_reassemble(msgs, 64, false), msgs);
}

TEST(BlockFormat, MessageSpanningManyBlocks) {
  auto msgs = std::vector<bsp::Message>{make_msg(0, 1, 0, 1000)};
  expect_same_messages(pack_and_reassemble(msgs, 64, true), msgs);
}

TEST(BlockFormat, ManyMessagesMixedSizesShuffled) {
  std::vector<bsp::Message> msgs;
  for (std::uint32_t i = 0; i < 50; ++i) {
    msgs.push_back(make_msg(i % 5, 1, i, (i * 37) % 300));
  }
  expect_same_messages(pack_and_reassemble(msgs, 96, true), msgs);
}

TEST(BlockFormat, BlocksAreFull) {
  // Packing 10 messages of 100 bytes into 128-byte blocks should produce
  // close to the information-theoretic minimum number of blocks.
  std::vector<bsp::Message> msgs;
  for (std::uint32_t i = 0; i < 10; ++i) msgs.push_back(make_msg(0, 1, i, 100));
  std::vector<const bsp::Message*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  std::size_t blocks = 0;
  pack_blocks(ptrs, 0, 128,
              [&](std::span<const std::byte>) { ++blocks; });
  // ~1000 payload bytes + ~22 per chunk; with 120 usable per block this
  // needs at least 9 blocks and should not exceed 13.
  EXPECT_GE(blocks, 9u);
  EXPECT_LE(blocks, 13u);
}

TEST(BlockFormat, DummyBlockSkipped) {
  std::vector<std::byte> dummy;
  make_dummy_block(5, 64, dummy);
  EXPECT_TRUE(is_dummy_block(dummy));
  Reassembler r;
  r.absorb(dummy, 5);
  EXPECT_TRUE(r.take().empty());
}

TEST(BlockFormat, WrongGroupDetected) {
  auto m = make_msg(0, 1, 0, 8);
  std::vector<const bsp::Message*> ptrs{&m};
  std::vector<std::byte> block;
  pack_blocks(ptrs, 3, 64, [&](std::span<const std::byte> b) {
    block.assign(b.begin(), b.end());
  });
  Reassembler r;
  EXPECT_THROW(r.absorb(block, 4), std::runtime_error);
}

TEST(BlockFormat, IncompleteMessageDetected) {
  auto m = make_msg(0, 1, 0, 500);
  std::vector<const bsp::Message*> ptrs{&m};
  std::vector<std::vector<std::byte>> blocks;
  pack_blocks(ptrs, 0, 64, [&](std::span<const std::byte> b) {
    blocks.emplace_back(b.begin(), b.end());
  });
  ASSERT_GT(blocks.size(), 1u);
  Reassembler r;
  r.absorb(blocks[0], 0);  // drop the rest
  EXPECT_THROW(r.take(), std::runtime_error);
}

TEST(BlockFormat, SameSrcSeqDifferentDstKeptApart) {
  // Regression: the reassembler used to key partial messages on (src, seq)
  // only.  seq numbers order messages per (src, dst) pair, so two messages
  // from one sender to *different* receivers in the same group can share a
  // seq — they must reassemble into two intact messages, not be merged.
  std::vector<bsp::Message> msgs{
      make_msg(0, 1, 0, 150),  // spans blocks at block_size 64
      make_msg(0, 2, 0, 150),  // same src, same seq, different dst
  };
  msgs[1].payload.assign(150, std::byte{0xAB});  // distinguishable payloads
  auto got = pack_and_reassemble(msgs, 64, true);
  ASSERT_EQ(got.size(), 2u);
  std::sort(got.begin(), got.end(),
            [](const auto& a, const auto& b) { return a.dst < b.dst; });
  EXPECT_EQ(got[0].dst, 1u);
  EXPECT_EQ(got[0].payload, msgs[0].payload);
  EXPECT_EQ(got[1].dst, 2u);
  EXPECT_EQ(got[1].payload, msgs[1].payload);
}

// --- Adversarial / corrupt-block parsing -----------------------------------
//
// Blocks come back from disk, so every header field is untrusted input: a
// torn write or bit flip can produce counts and lengths that point outside
// the block span or wrap 32-bit arithmetic.  Each test hand-crafts one
// corruption and expects em::CorruptBlockError (never a crash or an
// out-of-bounds access — these are the asan regression cases).

void poke_u32(std::vector<std::byte>& b, std::size_t off, std::uint32_t v) {
  std::memcpy(b.data() + off, &v, 4);
}
void poke_u16(std::vector<std::byte>& b, std::size_t off, std::uint16_t v) {
  std::memcpy(b.data() + off, &v, 2);
}

/// One valid 64-byte block holding a single small message, as a mutable
/// starting point for corruption.
std::vector<std::byte> valid_block(std::size_t block_size = 64,
                                   std::size_t payload_len = 8) {
  auto m = make_msg(1, 2, 0, payload_len);
  std::vector<const bsp::Message*> ptrs{&m};
  std::vector<std::byte> block;
  pack_blocks(ptrs, 0, block_size, [&](std::span<const std::byte> b) {
    block.assign(b.begin(), b.end());
  });
  return block;
}

TEST(CorruptBlock, TruncatedHeaderThrows) {
  std::vector<std::byte> tiny(kBlockHeaderBytes - 1, std::byte{0});
  EXPECT_THROW(parse_header(tiny), std::invalid_argument);
  Reassembler r;
  EXPECT_THROW(r.absorb(tiny, 0), std::exception);
}

TEST(CorruptBlock, NChunksBeyondSpanThrows) {
  // n_chunks claims more chunk headers than the block can physically hold;
  // the parser must reject it up front instead of walking off the end.
  auto block = valid_block();
  poke_u16(block, 4, 0x7FFF);
  Reassembler r;
  EXPECT_THROW(r.absorb(block, 0), em::CorruptBlockError);
}

TEST(CorruptBlock, TruncatedChunkHeaderThrows) {
  // Two chunks claimed, but the block ends inside the second chunk header.
  auto block = valid_block(64, 8);
  poke_u16(block, 4, 2);
  // First chunk: header(22) + 8 payload ends at 8+30=38; 64-38=26 bytes
  // remain, enough for the second header (22) — shrink the block so the
  // second header is cut off.
  block.resize(kBlockHeaderBytes + kChunkHeaderBytes + 8 + 10);
  Reassembler r;
  EXPECT_THROW(r.absorb(block, 0), em::CorruptBlockError);
}

TEST(CorruptBlock, ChunkLenPastBlockEndThrows) {
  // chunk_len points past the physical block span.
  auto block = valid_block();
  poke_u16(block, kBlockHeaderBytes + 20, 0xFFF0);
  Reassembler r;
  EXPECT_THROW(r.absorb(block, 0), em::CorruptBlockError);
}

TEST(CorruptBlock, OffsetOverflowWrapThrows) {
  // offset + chunk_len wraps 32-bit arithmetic: 0xFFFFFFF8 + 8 == 0 in u32,
  // which would pass a naive `offset + len <= total` check and memcpy to
  // payload.data() + 4 GiB.  The check must be done in 64 bits.
  auto block = valid_block(64, 8);
  poke_u32(block, kBlockHeaderBytes + 16, 0xFFFFFFF8u);
  Reassembler r;
  EXPECT_THROW(r.absorb(block, 0), em::CorruptBlockError);
}

TEST(CorruptBlock, OffsetPastTotalLenThrows) {
  // In-range lengths, but the chunk lands past the message's total_len.
  auto block = valid_block(64, 8);
  poke_u32(block, kBlockHeaderBytes + 16, 100);  // offset 100 into an 8-byte msg
  Reassembler r;
  EXPECT_THROW(r.absorb(block, 0), em::CorruptBlockError);
}

TEST(CorruptBlock, TotalLenMismatchAcrossChunksThrows) {
  // Two chunks of the "same" message disagree on total_len.  The payload
  // buffer is sized by the first chunk; trusting the second (larger) value
  // used to let the memcpy run past it — a heap overflow.
  auto m = make_msg(1, 2, 0, 100);
  std::vector<const bsp::Message*> ptrs{&m};
  std::vector<std::vector<std::byte>> blocks;
  pack_blocks(ptrs, 0, 64, [&](std::span<const std::byte> b) {
    blocks.emplace_back(b.begin(), b.end());
  });
  ASSERT_GE(blocks.size(), 2u);
  poke_u32(blocks[1], kBlockHeaderBytes + 12, 200);  // total_len 100 -> 200
  Reassembler r;
  r.absorb(blocks[0], 0);
  EXPECT_THROW(r.absorb(blocks[1], 0), em::CorruptBlockError);
}

TEST(CorruptBlock, OversizedTotalLenRejectedByLimit) {
  // gamma bounds any legitimate message, so a Reassembler built with that
  // cap rejects absurd total_len values before allocating the buffer.
  auto block = valid_block(64, 8);
  poke_u32(block, kBlockHeaderBytes + 12, 1u << 20);  // total_len = 1 MiB
  poke_u32(block, kBlockHeaderBytes + 16, 0);         // keep offset sane
  Reassembler capped(1024);
  EXPECT_THROW(capped.absorb(block, 0), em::CorruptBlockError);
  // An uncapped reassembler accepts the header (the chunk itself is
  // in-bounds) and reports the message incomplete at take() time.
  Reassembler uncapped;
  uncapped.absorb(block, 0);
  EXPECT_THROW(uncapped.take(), std::runtime_error);
}

TEST(CorruptBlock, GarbledBlockFuzzNeverCrashes) {
  // Byte-soup fuzz: random corruptions of valid blocks plus fully random
  // blocks.  absorb() must either succeed or throw an exception — never
  // read or write out of bounds (asan enforces the "never" part).
  util::Rng rng(2026);
  std::vector<bsp::Message> msgs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    msgs.push_back(make_msg(i, 1, i, (i * 53) % 200));
  }
  std::vector<const bsp::Message*> ptrs;
  for (const auto& m : msgs) ptrs.push_back(&m);
  std::vector<std::vector<std::byte>> blocks;
  pack_blocks(ptrs, 0, 96, [&](std::span<const std::byte> b) {
    blocks.emplace_back(b.begin(), b.end());
  });
  ASSERT_FALSE(blocks.empty());
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> block;
    if (iter % 4 == 0) {
      block.resize(96);
      for (auto& byte : block) {
        byte = static_cast<std::byte>(rng.below(256));
      }
      poke_u32(block, 0, 0);  // pass the dst_group check, fuzz the rest
    } else {
      block = blocks[rng.below(blocks.size())];
      const std::size_t flips = 1 + rng.below(6);
      for (std::size_t f = 0; f < flips; ++f) {
        block[rng.below(block.size())] ^=
            static_cast<std::byte>(1u << rng.below(8));
      }
    }
    Reassembler r(4096);
    try {
      r.absorb(block, 0);
      (void)r.take();
    } catch (const std::exception&) {
      // Detected corruption is the expected outcome; crashing is not.
    }
  }
}

TEST(ContextStore, RoundTripVariableSizes) {
  em::DiskArray disks(4, 64);
  em::TrackAllocators alloc(4);
  ContextStore store(disks, alloc, 10, 100);
  std::vector<std::vector<std::byte>> payloads;
  for (std::uint32_t i = 0; i < 10; ++i) {
    payloads.emplace_back(i * 9, static_cast<std::byte>(i + 1));
  }
  store.write(0, payloads);
  auto got = store.read(0, 10);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(got[i], payloads[i]);
}

TEST(ContextStore, PartialGroupReadWrite) {
  em::DiskArray disks(2, 32);
  em::TrackAllocators alloc(2);
  ContextStore store(disks, alloc, 8, 40);
  std::vector<std::vector<std::byte>> payloads;
  for (std::uint32_t i = 0; i < 3; ++i) {
    payloads.emplace_back(20, static_cast<std::byte>(0x40 + i));
  }
  store.write(4, payloads);
  auto got = store.read(4, 3);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(got[i], payloads[i]);
}

TEST(ContextStore, OversizedContextThrows) {
  em::DiskArray disks(2, 32);
  em::TrackAllocators alloc(2);
  ContextStore store(disks, alloc, 4, 40);
  std::vector<std::vector<std::byte>> payloads{std::vector<std::byte>(41)};
  EXPECT_THROW(store.write(0, payloads), std::runtime_error);
}

TEST(ContextStore, FullyParallelGroupAccess) {
  // Reading k consecutive contexts must use all D disks on every I/O.
  em::DiskArray disks(4, 64);
  em::TrackAllocators alloc(4);
  ContextStore store(disks, alloc, 16, 60);  // 1 block per context
  std::vector<std::vector<std::byte>> payloads(8,
                                               std::vector<std::byte>(60));
  store.write(0, payloads);
  disks.reset_stats();
  (void)store.read(0, 8);
  EXPECT_EQ(disks.stats().parallel_ios, 2u);  // 8 blocks / 4 disks
  EXPECT_DOUBLE_EQ(disks.stats().utilization(4), 1.0);
}

class MessageStoreTest : public ::testing::TestWithParam<RoutingMode> {};

TEST_P(MessageStoreTest, WriteReorganizeFetchRoundTrip) {
  em::DiskArray disks(4, 128);
  em::TrackAllocators alloc(4);
  MessageStore store(disks, alloc,
                     MessageStoreConfig{8, 32, GetParam()});
  util::Rng rng(9);

  // 8 groups of 4 destination processors each (group = dst / 4).
  std::vector<bsp::Message> msgs;
  for (std::uint32_t i = 0; i < 100; ++i) {
    msgs.push_back(make_msg(i % 16, i % 32, i, (i * 11) % 200));
  }
  store.write_messages(msgs, [](std::uint32_t dst) { return dst / 4; }, rng);
  store.flush(rng);
  store.reorganize(rng);

  std::vector<bsp::Message> got;
  for (std::uint32_t g = 0; g < 8; ++g) {
    auto part = store.fetch_group(g);
    for (auto& m : part) {
      EXPECT_EQ(m.dst / 4, g);
      got.push_back(std::move(m));
    }
  }
  expect_same_messages(got, msgs);
}

TEST_P(MessageStoreTest, SecondSuperstepReusesSpace) {
  em::DiskArray disks(2, 128);
  em::TrackAllocators alloc(2);
  MessageStore store(disks, alloc, MessageStoreConfig{4, 16, GetParam()});
  util::Rng rng(10);
  const auto group_of = [](std::uint32_t dst) { return dst / 2; };

  for (int superstep = 0; superstep < 3; ++superstep) {
    std::vector<bsp::Message> msgs;
    for (std::uint32_t i = 0; i < 20; ++i) {
      msgs.push_back(make_msg(i, i % 8, i + superstep * 100, 50));
    }
    store.write_messages(msgs, group_of, rng);
    store.flush(rng);
    store.reorganize(rng);
    std::vector<bsp::Message> got;
    for (std::uint32_t g = 0; g < 4; ++g) {
      auto part = store.fetch_group(g);
      got.insert(got.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    expect_same_messages(got, msgs);
  }
  // Linked-bucket tracks must have been recycled: space bounded by the
  // reserved regions plus one superstep of staging.
  EXPECT_LT(disks.max_tracks_used(), 200u);
}

TEST_P(MessageStoreTest, CapacityOverflowDiagnosed) {
  em::DiskArray disks(2, 128);
  em::TrackAllocators alloc(2);
  MessageStore store(disks, alloc, MessageStoreConfig{2, 2, GetParam()});
  util::Rng rng(11);
  std::vector<bsp::Message> msgs;
  for (std::uint32_t i = 0; i < 50; ++i) msgs.push_back(make_msg(0, 0, i, 100));
  EXPECT_THROW(store.write_messages(
                   msgs, [](std::uint32_t) { return 0u; }, rng),
               std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Modes, MessageStoreTest,
                         ::testing::Values(RoutingMode::compact,
                                           RoutingMode::padded,
                                           RoutingMode::deterministic),
                         [](const auto& info) {
                           switch (info.param) {
                             case RoutingMode::compact:
                               return "compact";
                             case RoutingMode::padded:
                               return "padded";
                             default:
                               return "deterministic";
                           }
                         });

TEST(MessageStore, DeterministicModeBalancesExactly) {
  // Round-robin placement makes every bucket's chain lengths differ by at
  // most one across the disks — deterministic, not just w.h.p.
  em::DiskArray disks(4, 128);
  em::TrackAllocators alloc(4);
  MessageStore store(disks, alloc,
                     MessageStoreConfig{4, 256, RoutingMode::deterministic});
  util::Rng rng(21);
  std::vector<bsp::Message> msgs;
  for (std::uint32_t i = 0; i < 300; ++i) {
    msgs.push_back(make_msg(i, i % 8, i, 100));
  }
  store.write_messages(msgs, [](std::uint32_t dst) { return dst / 2; }, rng);
  store.flush(rng);
  const auto& buckets = store.buckets();
  for (std::uint32_t b = 0; b < 4; ++b) {
    std::size_t lo = SIZE_MAX, hi = 0;
    for (std::uint32_t d = 0; d < 4; ++d) {
      lo = std::min(lo, buckets.blocks_on_disk(b, d));
      hi = std::max(hi, buckets.blocks_on_disk(b, d));
    }
    if (hi > 0) {
      EXPECT_LE(hi - lo, 1u) << "bucket " << b;
    }
  }
}

TEST(MessageStore, PaddedModeWritesFullCapacity) {
  em::DiskArray disks(2, 128);
  em::TrackAllocators alloc(2);
  MessageStore store(disks, alloc,
                     MessageStoreConfig{4, 8, RoutingMode::padded});
  util::Rng rng(12);
  // No traffic at all: padded mode still routes 4 groups x 8 dummy blocks.
  auto stats = store.reorganize(rng);
  EXPECT_EQ(stats.blocks_total, 32u);
  EXPECT_EQ(stats.dummy_blocks, 32u);
  for (std::uint32_t g = 0; g < 4; ++g) {
    EXPECT_EQ(store.group_blocks(g), 8u);
    EXPECT_TRUE(store.fetch_group(g).empty());  // dummies skipped
  }
}

TEST(MessageStore, CompactModeNoTrafficNoIo) {
  em::DiskArray disks(2, 128);
  em::TrackAllocators alloc(2);
  MessageStore store(disks, alloc,
                     MessageStoreConfig{4, 8, RoutingMode::compact});
  util::Rng rng(13);
  auto stats = store.reorganize(rng);
  EXPECT_EQ(stats.blocks_total, 0u);
  EXPECT_EQ(disks.stats().parallel_ios, 0u);
}

TEST(MessageStore, RoutingBalanceStats) {
  em::DiskArray disks(4, 128);
  em::TrackAllocators alloc(4);
  MessageStore store(disks, alloc,
                     MessageStoreConfig{8, 64, RoutingMode::compact});
  util::Rng rng(14);
  std::vector<bsp::Message> msgs;
  for (std::uint32_t i = 0; i < 400; ++i) {
    msgs.push_back(make_msg(i, i % 16, i, 90));
  }
  store.write_messages(msgs, [](std::uint32_t dst) { return dst / 2; }, rng);
  store.flush(rng);
  auto stats = store.reorganize(rng);
  EXPECT_GT(stats.blocks_total, 0u);
  // Each bucket holds ~blocks_total/D blocks; Lemma 2 says the max chain is
  // close to blocks_total/D^2 — allow generous slack but catch gross
  // imbalance (e.g. everything on one disk).
  EXPECT_LT(stats.max_chain, stats.blocks_total / 4);
}

}  // namespace
}  // namespace embsp::sim
