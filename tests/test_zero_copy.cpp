// Zero-copy substrate tests: arena-backed message refs, vectored backend
// transfers, and track-coalescing in the disk array.
//
// The claims under test mirror the pipelined-scheduler suite's parity
// discipline:
//  * the MessageRef packing/reassembly path is BIT-IDENTICAL to the owning
//    Message path (same blocks, same reassembled payloads);
//  * vectored backend I/O (read_vec/write_vec) produces the same bytes on
//    the medium as the scalar path, and the default decomposition presents
//    the same per-disk call sequence to decorators (the fault schedule);
//  * DiskArray track coalescing is purely physical: disk images, model
//    IoStats and per-track Disk counters are unchanged, only the backend
//    call count drops.
//
// Carries the `sanitize` ctest label (arena spans + vectored buffers are
// prime ASan bait).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "em/disk_array.hpp"
#include "em/fault_backend.hpp"
#include "sim/routing.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace embsp {
namespace {

namespace fs = std::filesystem;

// --- Arena ------------------------------------------------------------------

TEST(Arena, SpansStayPutAcrossGrowth) {
  util::Arena arena(/*chunk_bytes=*/64);
  std::vector<std::pair<std::span<std::byte>, std::uint8_t>> spans;
  for (std::uint8_t i = 0; i < 100; ++i) {
    auto s = arena.allocate(48);  // forces many chunk growths
    std::fill(s.begin(), s.end(), static_cast<std::byte>(i));
    spans.emplace_back(s, i);
  }
  for (const auto& [s, tag] : spans) {
    for (auto b : s) EXPECT_EQ(b, static_cast<std::byte>(tag));
  }
  EXPECT_EQ(arena.bytes_in_use(), 100u * 48u);
  EXPECT_EQ(arena.high_water(), 100u * 48u);
  const auto cap = arena.capacity();
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.high_water(), 100u * 48u);  // peak survives reset
  EXPECT_EQ(arena.capacity(), cap);           // capacity retained
}

TEST(Arena, CopyReturnsStableEqualBytes) {
  util::Arena arena;
  std::vector<std::byte> src(1000);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 7 + 3);
  }
  auto c = arena.copy(src);
  src.assign(src.size(), std::byte{0});  // mutate the original
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c[i], static_cast<std::byte>(i * 7 + 3));
  }
}

// --- Vectored backend I/O ---------------------------------------------------

std::vector<std::byte> pattern(std::size_t size, std::uint64_t tag) {
  std::vector<std::byte> b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::byte>(static_cast<std::uint8_t>(tag * 41 + i));
  }
  return b;
}

std::vector<char> slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

TEST(VectoredBackend, FileWriteVecMatchesScalarWrites) {
  const auto dir = fs::temp_directory_path();
  const auto pa = dir / "embsp_zc_scalar.bin";
  const auto pb = dir / "embsp_zc_vec.bin";
  fs::remove(pa);
  fs::remove(pb);

  const auto b0 = pattern(64, 1);
  const auto b1 = pattern(64, 2);
  const auto b2 = pattern(64, 3);
  {
    auto scalar = em::make_file_backend(pa.string(), /*keep=*/true);
    scalar->write(128, b0);
    scalar->write(192, b1);
    scalar->write(256, b2);
    scalar->flush();

    auto vec = em::make_file_backend(pb.string(), /*keep=*/true);
    const std::span<const std::byte> srcs[] = {b0, b1, b2};
    vec->write_vec(128, srcs);
    vec->flush();
    EXPECT_EQ(scalar->size(), vec->size());
  }
  EXPECT_EQ(slurp(pa), slurp(pb));

  // Gathering read_vec sees the same bytes as scalar reads.
  {
    auto vec = em::make_file_backend(pb.string(), /*keep=*/true);
    std::vector<std::byte> r0(64), r1(64), r2(64);
    const std::span<std::byte> dsts[] = {r0, r1, r2};
    vec->read_vec(128, dsts);
    EXPECT_EQ(r0, b0);
    EXPECT_EQ(r1, b1);
    EXPECT_EQ(r2, b2);
  }
  fs::remove(pa);
  fs::remove(pb);
}

TEST(VectoredBackend, FileVecRoundTripsAcrossManyBuffers) {
  // More buffers than IOV_MAX would be needed for only if huge; exercise a
  // moderately long run plus a short-read tail (region never written reads
  // as zeros).
  const auto p = fs::temp_directory_path() / "embsp_zc_many.bin";
  fs::remove(p);
  auto be = em::make_file_backend(p.string(), /*keep=*/false);
  std::vector<std::vector<std::byte>> bufs;
  std::vector<std::span<const std::byte>> srcs;
  for (std::uint64_t t = 0; t < 40; ++t) {
    bufs.push_back(pattern(32, t + 5));
    srcs.emplace_back(bufs.back());
  }
  be->write_vec(0, srcs);
  std::vector<std::vector<std::byte>> in(41, std::vector<std::byte>(32));
  std::vector<std::span<std::byte>> dsts;
  for (auto& b : in) dsts.emplace_back(b);
  be->read_vec(0, dsts);  // last buffer reads past EOF -> zero filled
  for (std::uint64_t t = 0; t < 40; ++t) EXPECT_EQ(in[t], bufs[t]) << t;
  EXPECT_EQ(in[40], std::vector<std::byte>(32)) << "unwritten tail not zero";
}

// Records the scalar call sequence a decorator would observe.
class CallLogBackend final : public em::Backend {
 public:
  struct Call {
    char kind;  // 'r' or 'w'
    std::uint64_t offset;
    std::size_t len;
    bool operator==(const Call&) const = default;
  };
  void read(std::uint64_t offset, std::span<std::byte> dst) override {
    calls.push_back({'r', offset, dst.size()});
    inner.read(offset, dst);
  }
  void write(std::uint64_t offset, std::span<const std::byte> src) override {
    calls.push_back({'w', offset, src.size()});
    inner.write(offset, src);
  }
  [[nodiscard]] std::uint64_t size() const override { return inner.size(); }
  em::MemoryBackend inner;
  std::vector<Call> calls;
};

TEST(VectoredBackend, DefaultVecDecomposesIntoScalarCallSequence) {
  // The Backend default is the compatibility contract for decorators: a
  // vectored transfer must hit read()/write() once per buffer, in order,
  // at consecutive offsets.
  CallLogBackend a, b;
  const auto b0 = pattern(16, 9);
  const auto b1 = pattern(16, 10);
  a.write(100, b0);
  a.write(116, b1);
  std::vector<std::byte> r(16);
  a.read(100, r);

  const std::span<const std::byte> srcs[] = {b0, b1};
  b.write_vec(100, srcs);
  const std::span<std::byte> dsts[] = {r};
  b.read_vec(100, dsts);

  EXPECT_EQ(a.calls, b.calls);
}

TEST(VectoredBackend, FaultScheduleSeesSameCallIndices) {
  // FaultInjectingBackend does not override the vectored entry points, so
  // the deterministic fault schedule is keyed on the same call sequence
  // whether the caller goes scalar or vectored.
  em::FaultSpec spec;
  spec.seed = 11;
  spec.bursts.push_back({0u, 2u, 1u});  // exactly call #2 faults

  auto run = [&](bool vectored) {
    em::FaultInjectingBackend be(std::make_unique<em::MemoryBackend>(), spec,
                                 /*sim_seed=*/0, /*disk_index=*/0);
    const auto b0 = pattern(8, 1);
    const auto b1 = pattern(8, 2);
    const auto b2 = pattern(8, 3);
    std::uint64_t faulted_at = ~0ull;
    try {
      if (vectored) {
        const std::span<const std::byte> srcs[] = {b0, b1, b2};
        be.write_vec(0, srcs);
      } else {
        be.write(0, b0);
        be.write(8, b1);
        be.write(16, b2);
      }
    } catch (const em::IoError&) {
      faulted_at = be.calls();
    }
    return std::pair{faulted_at, be.calls()};
  };

  const auto scalar = run(false);
  const auto vec = run(true);
  EXPECT_EQ(scalar.first, 3u);  // burst fired on the third call
  EXPECT_EQ(scalar, vec);
}

// --- MessageRef packing / reassembly ----------------------------------------

struct Fuzzed {
  std::vector<bsp::Message> owned;
  std::vector<const bsp::Message*> ptrs;
  std::vector<bsp::MessageRef> refs;
};

Fuzzed fuzz_messages(std::uint64_t seed, std::size_t n,
                     std::size_t max_payload) {
  Fuzzed f;
  util::Rng rng(seed);
  f.owned.reserve(n);  // payload vectors must not reallocate under refs
  for (std::size_t i = 0; i < n; ++i) {
    bsp::Message m;
    m.src = static_cast<std::uint32_t>(rng.below(7));
    m.dst = static_cast<std::uint32_t>(rng.below(5));
    m.seq = static_cast<std::uint32_t>(i);
    m.payload.resize(rng.below(max_payload + 1));
    for (auto& byte : m.payload) {
      byte = static_cast<std::byte>(rng.below(256));
    }
    f.owned.push_back(std::move(m));
  }
  for (const auto& m : f.owned) {
    f.ptrs.push_back(&m);
    f.refs.push_back({m.src, m.dst, m.seq, m.payload});
  }
  return f;
}

using Blocks = std::vector<std::vector<std::byte>>;

TEST(MessageRefPath, PackBlocksRefMatchesOwningBitForBit) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const auto f = fuzz_messages(seed, 64, 600);
    Blocks a, b;
    const std::size_t block = 128;
    const auto na = sim::pack_blocks(
        std::span<const bsp::Message* const>(f.ptrs), /*dst_group=*/3, block,
        [&](std::span<const std::byte> blk) {
          a.emplace_back(blk.begin(), blk.end());
        });
    const auto nb = sim::pack_blocks(
        std::span<const bsp::MessageRef>(f.refs), 3, block,
        [&](std::span<const std::byte> blk) {
          b.emplace_back(blk.begin(), blk.end());
        });
    EXPECT_EQ(na, nb) << seed;
    EXPECT_EQ(a, b) << "blocks differ for seed " << seed;
  }
}

TEST(MessageRefPath, PackBlocksIntoMatchesEmit) {
  const auto f = fuzz_messages(99, 48, 500);
  const std::size_t block = 128;
  Blocks emitted;
  sim::pack_blocks(std::span<const bsp::MessageRef>(f.refs), 0, block,
                   [&](std::span<const std::byte> blk) {
                     emitted.emplace_back(blk.begin(), blk.end());
                   });
  Blocks in_place;
  const auto n = sim::pack_blocks_into(
      std::span<const bsp::MessageRef>(f.refs), 0, block, [&] {
        in_place.emplace_back(block);
        return std::span<std::byte>(in_place.back());
      });
  EXPECT_EQ(n, in_place.size());
  EXPECT_EQ(emitted, in_place);
}

TEST(MessageRefPath, ArenaReassemblyRoundTripFuzz) {
  // pack -> shuffle block order -> reassemble into an arena -> compare to
  // the originals.  Payloads up to 5x the block size force multi-block
  // messages with out-of-order chunk arrival.
  for (std::uint64_t seed : {3u, 21u, 77u}) {
    const auto f = fuzz_messages(seed, 40, 640);
    const std::size_t block = 128;
    Blocks blocks;
    sim::pack_blocks(std::span<const bsp::MessageRef>(f.refs), 0, block,
                     [&](std::span<const std::byte> blk) {
                       blocks.emplace_back(blk.begin(), blk.end());
                     });
    util::Rng rng(seed * 31 + 1);
    for (std::size_t i = blocks.size(); i > 1; --i) {
      std::swap(blocks[i - 1], blocks[rng.below(i)]);
    }
    util::Arena arena;
    sim::Reassembler reasm(/*max_message_bytes=*/1 << 20, &arena);
    for (const auto& blk : blocks) reasm.absorb(blk, /*expected_group=*/0);
    auto got = reasm.take_refs();
    ASSERT_EQ(got.size(), f.owned.size());
    bsp::sort_inbox(got);

    auto want = f.refs;
    bsp::sort_inbox(want);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].src, want[i].src) << i;
      EXPECT_EQ(got[i].dst, want[i].dst) << i;
      EXPECT_EQ(got[i].seq, want[i].seq) << i;
      ASSERT_EQ(got[i].payload.size(), want[i].payload.size()) << i;
      EXPECT_TRUE(std::equal(got[i].payload.begin(), got[i].payload.end(),
                             want[i].payload.begin()))
          << "payload " << i << " differs (seed " << seed << ")";
    }
    // Every reassembled payload lives in the arena.
    EXPECT_GE(arena.bytes_in_use(),
              std::accumulate(got.begin(), got.end(), std::size_t{0},
                              [](std::size_t acc, const bsp::MessageRef& m) {
                                return acc + m.payload.size();
                              }));
  }
}

TEST(MessageRefPath, OutboxRefsMatchMaterializedMessages) {
  auto fill = [](bsp::Outbox& out) {
    out.send_value(2, std::uint64_t{0xDEADBEEF});
    out.send_vector(1, std::vector<std::uint32_t>{1, 2, 3, 4, 5});
    const auto p = pattern(33, 6);
    out.send(2, p);
    out.send_value(0, 3.5);
  };
  bsp::Outbox ref_box(7, 8), own_box(7, 8);
  fill(ref_box);
  fill(own_box);

  const auto refs = ref_box.messages();
  const auto owned = own_box.take();
  ASSERT_EQ(refs.size(), owned.size());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(refs[i].src, owned[i].src) << i;
    EXPECT_EQ(refs[i].dst, owned[i].dst) << i;
    EXPECT_EQ(refs[i].seq, owned[i].seq) << i;
    ASSERT_EQ(refs[i].payload.size(), owned[i].payload.size()) << i;
    EXPECT_TRUE(std::equal(refs[i].payload.begin(), refs[i].payload.end(),
                           owned[i].payload.begin()))
        << i;
  }
  // take() paid a copy per payload byte; the ref path paid none.
  EXPECT_EQ(ref_box.bytes_copied(), 0u);
  std::size_t total = 0;
  for (const auto& m : owned) total += m.payload.size();
  EXPECT_EQ(own_box.bytes_copied(), total);
}

TEST(MessageRefPath, InboxSortsRefAndOwningIdentically) {
  // Both inbox constructors must present the canonical (src, seq) order.
  std::vector<bsp::Message> owned;
  for (auto [src, seq] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {3, 0}, {1, 1}, {1, 0}, {2, 5}, {0, 9}, {2, 1}}) {
    bsp::Message m;
    m.src = src;
    m.dst = 0;
    m.seq = seq;
    m.payload = pattern(4, src * 16 + seq);
    owned.push_back(std::move(m));
  }
  std::vector<bsp::MessageRef> refs;
  for (const auto& m : owned) refs.push_back({m.src, m.dst, m.seq, m.payload});

  const bsp::Inbox own_box(owned);  // copies, owned stays alive for refs
  const bsp::Inbox ref_box(std::move(refs));
  ASSERT_EQ(own_box.count(), ref_box.count());
  for (std::size_t i = 0; i < own_box.count(); ++i) {
    EXPECT_EQ(own_box.all()[i].src, ref_box.all()[i].src) << i;
    EXPECT_EQ(own_box.all()[i].seq, ref_box.all()[i].seq) << i;
    EXPECT_TRUE(std::equal(own_box.all()[i].payload.begin(),
                           own_box.all()[i].payload.end(),
                           ref_box.all()[i].payload.begin()))
        << i;
  }
}

// --- DiskArray coalescing ----------------------------------------------------

class CoalescedDiskArray : public ::testing::TestWithParam<em::IoEngine> {};

TEST_P(CoalescedDiskArray, BatchedIoPreservesImageStatsAndCounters) {
  // The same batched submission with coalescing on vs off must produce the
  // same file images, the same model IoStats and the same per-disk track
  // counters; only engine.coalesced_tracks may differ.
  const auto dir = fs::temp_directory_path();
  // Key the scratch paths on the engine parameter: ctest runs each
  // parameterization as its own test, possibly concurrently, and shared
  // paths would let one instance's cleanup race the other's run.
  auto tag_path = [&](const char* tag, std::size_t d) {
    return dir / ("embsp_zc_coal_" + std::string(tag) + "_e" +
                  std::to_string(static_cast<int>(GetParam())) + "_" +
                  std::to_string(d) + ".bin");
  };
  struct Probe {
    em::IoStats stats;
    std::uint64_t coalesced = 0;
    std::uint64_t disk0_writes = 0;
    std::uint64_t disk0_reads = 0;
  };

  auto run = [&](const char* tag, bool coalesce) {
    em::DiskArrayOptions opts;
    opts.coalesce = coalesce;
    auto arr = em::make_disk_array(
        GetParam(), 2, 64,
        [&](std::size_t d) {
          return em::make_file_backend(tag_path(tag, d).string(),
                                       /*keep=*/true);
        },
        0, opts);
    // Disk 0 gets an adjacent run of 5 tracks plus a detached track; disk 1
    // gets two detached tracks.  cycles = max per-disk op count = 6.
    std::vector<std::vector<std::byte>> data;
    for (std::uint64_t t = 0; t < 9; ++t) data.push_back(pattern(64, t + 1));
    std::vector<em::WriteOp> w;
    for (std::uint64_t t = 0; t < 5; ++t) w.push_back({0, 10 + t, data[t]});
    w.push_back({0, 99, data[5]});
    w.push_back({1, 0, data[6]});
    w.push_back({1, 7, data[7]});
    arr->parallel_write_batch(w, /*cycles=*/6);

    std::vector<std::vector<std::byte>> in(8, std::vector<std::byte>(64));
    std::vector<em::ReadOp> r;
    for (std::uint64_t t = 0; t < 5; ++t) r.push_back({0, 10 + t, in[t]});
    r.push_back({0, 99, in[5]});
    r.push_back({1, 0, in[6]});
    r.push_back({1, 7, in[7]});
    arr->parallel_read_batch(r, /*cycles=*/6);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(in[i], data[i]) << i;
    arr->sync();

    Probe p;
    p.stats = arr->stats();
    for (const auto& ds : arr->engine_stats().per_disk) {
      p.coalesced += ds.coalesced_tracks;
    }
    p.disk0_writes = arr->disk(0).writes();
    p.disk0_reads = arr->disk(0).reads();
    return p;
  };

  const auto off = run("off", false);
  const auto on = run("on", true);

  EXPECT_EQ(off.stats.parallel_ios, 12u);  // 6 write + 6 read cycles
  EXPECT_EQ(on.stats.parallel_ios, off.stats.parallel_ios);
  EXPECT_EQ(on.stats.blocks_written, off.stats.blocks_written);
  EXPECT_EQ(on.stats.blocks_read, off.stats.blocks_read);
  EXPECT_EQ(on.stats.bytes_written, off.stats.bytes_written);
  EXPECT_EQ(on.stats.bytes_read, off.stats.bytes_read);
  EXPECT_EQ(on.disk0_writes, off.disk0_writes);
  EXPECT_EQ(on.disk0_reads, off.disk0_reads);
  EXPECT_EQ(off.coalesced, 0u);
  // The 5-track adjacent run coalesces 4 rider tracks per direction.
  EXPECT_EQ(on.coalesced, 8u);

  for (std::size_t d = 0; d < 2; ++d) {
    const auto a = slurp(tag_path("off", d));
    const auto b = slurp(tag_path("on", d));
    ASSERT_FALSE(a.empty()) << d;
    EXPECT_EQ(a, b) << "disk image " << d << " differs with coalescing";
    fs::remove(tag_path("off", d));
    fs::remove(tag_path("on", d));
  }
}

TEST_P(CoalescedDiskArray, ChecksumsVerifyPerTrackThroughCoalescedRuns) {
  em::DiskArrayOptions opts;
  opts.coalesce = true;
  opts.verify_checksums = true;
  auto arr = em::make_disk_array(GetParam(), 1, 64, nullptr, 0, opts);
  std::vector<std::vector<std::byte>> data;
  std::vector<em::WriteOp> w;
  for (std::uint64_t t = 0; t < 4; ++t) {
    data.push_back(pattern(64, t + 30));
    w.push_back({0, t, data.back()});
  }
  arr->parallel_write_batch(w, 4);
  std::vector<std::vector<std::byte>> in(4, std::vector<std::byte>(64));
  std::vector<em::ReadOp> r;
  for (std::uint64_t t = 0; t < 4; ++t) r.push_back({0, t, in[t]});
  // A coalesced 4-track read must still verify each track's checksum.
  arr->parallel_read_batch(r, 4);
  for (std::size_t t = 0; t < 4; ++t) EXPECT_EQ(in[t], data[t]) << t;
}

INSTANTIATE_TEST_SUITE_P(Engines, CoalescedDiskArray,
                         ::testing::Values(em::IoEngine::serial,
                                           em::IoEngine::parallel));

}  // namespace
}  // namespace embsp
