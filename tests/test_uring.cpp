// UringBackend unit tests: byte semantics against FileBackend (the
// reference), O_DIRECT staging, fixed-buffer registration, keep/truncate
// discipline, the double-open guard, and the runtime-fallback factory.
//
// Every test that needs a live ring begins with a uring_supported() probe
// and GTEST_SKIPs when the kernel (or a seccomp filter) says no — the
// ctest label `uring` marks the suite so CI can surface skip counts.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <random>
#include <vector>

#include "em/disk_array.hpp"
#include "em/io_error.hpp"
#include "em/uring_backend.hpp"

namespace embsp::em {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::byte> pattern(std::size_t n, std::uint32_t seed) {
  std::vector<std::byte> v(n);
  std::mt19937 g(seed);
  for (auto& b : v) b = static_cast<std::byte>(g() & 0xFF);
  return v;
}

#define SKIP_WITHOUT_URING()                                     \
  do {                                                           \
    if (!uring_supported()) {                                    \
      GTEST_SKIP() << "io_uring unavailable on this kernel";     \
    }                                                            \
  } while (0)

TEST(UringBackend, ReadBackWritten) {
  SKIP_WITHOUT_URING();
  UringBackend b(temp_path("embsp_uring_rw.bin"));
  const auto data = pattern(4096, 1);
  b.write(0, data);
  std::vector<std::byte> out(4096);
  b.read(0, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(b.size(), 4096u);
}

TEST(UringBackend, UnwrittenReadsZero) {
  SKIP_WITHOUT_URING();
  UringBackend b(temp_path("embsp_uring_zero.bin"));
  const auto data = pattern(512, 2);
  b.write(0, data);
  // Straddles EOF: first 512 bytes written, the rest never touched.
  std::vector<std::byte> out(2048, std::byte{0xFF});
  b.read(0, out);
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 512, data.begin()));
  for (std::size_t i = 512; i < out.size(); ++i) {
    EXPECT_EQ(out[i], std::byte{0}) << "at " << i;
  }
  // Entirely past EOF.
  std::vector<std::byte> far(256, std::byte{0xFF});
  b.read(1 << 20, far);
  for (auto v : far) EXPECT_EQ(v, std::byte{0});
}

TEST(UringBackend, VectoredMatchesScalar) {
  SKIP_WITHOUT_URING();
  UringBackend b(temp_path("embsp_uring_vec.bin"));
  const std::size_t kBlock = 512;
  std::vector<std::vector<std::byte>> blocks;
  std::vector<std::span<const std::byte>> srcs;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(pattern(kBlock, 100 + i));
    srcs.emplace_back(blocks.back());
  }
  b.write_vec(3 * kBlock, srcs);
  EXPECT_EQ(b.size(), (3 + 8) * kBlock);
  // Scalar read of the whole range sees the scattered writes in order.
  std::vector<std::byte> all(8 * kBlock);
  b.read(3 * kBlock, all);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(0, std::memcmp(all.data() + i * kBlock, blocks[i].data(),
                             kBlock))
        << "block " << i;
  }
  // Vectored read scatters back out.
  std::vector<std::vector<std::byte>> outs(8,
                                           std::vector<std::byte>(kBlock));
  std::vector<std::span<std::byte>> dsts;
  for (auto& o : outs) dsts.emplace_back(o);
  b.read_vec(3 * kBlock, dsts);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(outs[i], blocks[i]) << "block " << i;
}

TEST(UringBackend, MatchesFileBackendByteForByte) {
  SKIP_WITHOUT_URING();
  // Same randomized op sequence against both backends; images must agree.
  UringBackend u(temp_path("embsp_uring_parity_u.bin"));
  FileBackend f(temp_path("embsp_uring_parity_f.bin"));
  std::mt19937 g(7);
  const std::size_t kSpanMax = 64 * 1024;
  for (int op = 0; op < 200; ++op) {
    const std::uint64_t off = g() % kSpanMax;
    const std::size_t len = 1 + g() % 4096;
    if (g() % 2 == 0) {
      const auto data = pattern(len, g());
      u.write(off, data);
      f.write(off, data);
    } else {
      std::vector<std::byte> a(len), b(len);
      u.read(off, a);
      f.read(off, b);
      ASSERT_EQ(a, b) << "read mismatch at op " << op;
    }
  }
  EXPECT_EQ(u.size(), f.size());
  std::vector<std::byte> a(kSpanMax + 4096), b(a.size());
  u.read(0, a);
  f.read(0, b);
  EXPECT_EQ(a, b);
  u.flush();  // IORING_OP_FSYNC path
}

TEST(UringBackend, DirectIoUnalignedStaging) {
  SKIP_WITHOUT_URING();
  UringConfig cfg;
  cfg.direct = true;
  UringBackend b(temp_path("embsp_uring_direct.bin"), /*keep=*/false, cfg);
  // tmpfs refuses O_DIRECT; the backend degrades but semantics must hold
  // either way, so the test runs regardless and only the stats differ.
  const auto base = pattern(16384, 42);
  b.write(0, base);
  // Unaligned overwrite in the middle: read-modify-write must preserve the
  // aligned-edge neighbours.
  const auto patch = pattern(1000, 43);
  b.write(4096 + 123, patch);
  std::vector<std::byte> out(16384);
  b.read(0, out);
  std::vector<std::byte> expect = base;
  std::memcpy(expect.data() + 4096 + 123, patch.data(), patch.size());
  EXPECT_EQ(out, expect);
  // Unaligned read.
  std::vector<std::byte> window(777);
  b.read(4096 + 200, window);
  EXPECT_EQ(0, std::memcmp(window.data(), expect.data() + 4096 + 200, 777));
  if (b.direct_io()) {
    EXPECT_GT(b.uring_stats().bounced_bytes, 0u);
  }
}

TEST(UringBackend, DirectIoUnalignedWritePastEof) {
  SKIP_WITHOUT_URING();
  UringConfig cfg;
  cfg.direct = true;
  UringBackend b(temp_path("embsp_uring_direct_eof.bin"), false, cfg);
  // First write is unaligned and beyond any existing data: the staging
  // chunk has no committed bytes to read back, so the edges must come out
  // zero, exactly like FileBackend's sparse-file semantics.
  const auto data = pattern(100, 5);
  b.write(5000, data);
  std::vector<std::byte> out(8192, std::byte{0xFF});
  b.read(0, out);
  for (std::size_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(out[i], std::byte{0}) << "at " << i;
  }
  EXPECT_EQ(0, std::memcmp(out.data() + 5000, data.data(), 100));
  for (std::size_t i = 5100; i < out.size(); ++i) {
    ASSERT_EQ(out[i], std::byte{0}) << "at " << i;
  }
  EXPECT_EQ(b.size(), 5100u);
}

TEST(UringBackend, RegisteredBuffersUsedForFixedOps) {
  SKIP_WITHOUT_URING();
  UringBackend b(temp_path("embsp_uring_fixed.bin"));
  std::vector<std::byte> arena(8192);
  std::span<std::byte> region(arena);
  const bool ok = b.register_buffers({&region, 1});
  if (!ok) GTEST_SKIP() << "kernel refused IORING_REGISTER_BUFFERS";
  auto data = pattern(4096, 9);
  std::copy(data.begin(), data.end(), arena.begin());
  b.write(0, std::span<const std::byte>(arena.data(), 4096));
  EXPECT_GT(b.uring_stats().fixed_ops, 0u);
  const auto fixed_before = b.uring_stats().fixed_ops;
  // Reads into the registered region too.
  b.read(0, std::span<std::byte>(arena.data() + 4096, 4096));
  EXPECT_GT(b.uring_stats().fixed_ops, fixed_before);
  EXPECT_EQ(0, std::memcmp(arena.data(), arena.data() + 4096, 4096));
  // A buffer outside every registered region falls back to plain SQEs
  // (and still works).
  std::vector<std::byte> outside(4096);
  const auto fixed_after = b.uring_stats().fixed_ops;
  b.read(0, outside);
  EXPECT_EQ(b.uring_stats().fixed_ops, fixed_after);
  EXPECT_EQ(0, std::memcmp(outside.data(), data.data(), 4096));
  // Unregister; subsequent ops are plain.
  EXPECT_TRUE(b.register_buffers({}));
  b.read(0, std::span<std::byte>(arena.data(), 4096));
  EXPECT_EQ(b.uring_stats().fixed_ops, fixed_after);
}

TEST(UringBackend, KeepPreservesAndScratchUnlinks) {
  SKIP_WITHOUT_URING();
  const auto keep_path = temp_path("embsp_uring_keep.bin");
  const auto data = pattern(1024, 11);
  {
    UringBackend b(keep_path, /*keep=*/true);
    b.write(0, data);
  }
  ASSERT_TRUE(std::filesystem::exists(keep_path));
  {
    // Re-open preserves contents (no truncate of preexisting kept files).
    UringBackend b(keep_path, /*keep=*/true);
    EXPECT_EQ(b.size(), 1024u);
    std::vector<std::byte> out(1024);
    b.read(0, out);
    EXPECT_EQ(out, data);
  }
  std::filesystem::remove(keep_path);
  const auto scratch_path = temp_path("embsp_uring_scratch.bin");
  {
    UringBackend b(scratch_path);
    b.write(0, data);
    EXPECT_TRUE(std::filesystem::exists(scratch_path));
  }
  EXPECT_FALSE(std::filesystem::exists(scratch_path));
}

TEST(UringBackend, DoubleOpenThrows) {
  SKIP_WITHOUT_URING();
  const auto path = temp_path("embsp_uring_double.bin");
  UringBackend a(path);
  EXPECT_THROW(UringBackend{path}, PersistentIoError);
  // Cross-backend too: FileBackend and UringBackend share the guard.
  EXPECT_THROW(FileBackend{path}, PersistentIoError);
}

TEST(UringBackend, FactoryFallsBackWhenUnsupported) {
  // Runs everywhere: with io_uring available it returns a UringBackend,
  // without it a FileBackend — and either way the Backend contract holds.
  auto b = make_uring_file_backend(temp_path("embsp_uring_fb.bin"));
  ASSERT_NE(b, nullptr);
  const auto data = pattern(256, 3);
  b->write(0, data);
  std::vector<std::byte> out(256);
  b->read(0, out);
  EXPECT_EQ(out, data);
  const bool is_uring = dynamic_cast<UringBackend*>(b.get()) != nullptr;
  EXPECT_EQ(is_uring, uring_supported());
}

TEST(UringBackend, ScratchFactoryUniquePerDrive) {
  auto factory = make_uring_scratch_factory("", "test");
  auto b0 = factory(0);
  auto b1 = factory(1);  // distinct path: no double-open throw
  ASSERT_NE(b0, nullptr);
  ASSERT_NE(b1, nullptr);
  const auto data = pattern(128, 4);
  b0->write(0, data);
  std::vector<std::byte> out(128, std::byte{0xAA});
  b1->read(0, out);  // b1 is a different file: reads zero
  for (auto v : out) EXPECT_EQ(v, std::byte{0});
}

TEST(UringBackend, DiskArrayOnUringEngine) {
  SKIP_WITHOUT_URING();
  // End-to-end through make_disk_array: the uring engine schedules like the
  // worker pool but every drive is a UringBackend scratch file.
  const std::size_t kD = 3, kB = 512;
  auto disks = make_disk_array(IoEngine::uring, kD, kB,
                               make_uring_scratch_factory("", "da"));
  std::vector<std::vector<std::byte>> blocks;
  std::vector<WriteOp> writes;
  for (std::uint32_t d = 0; d < kD; ++d) {
    blocks.push_back(pattern(kB, 60 + d));
    writes.push_back({d, d, blocks.back()});
  }
  disks->parallel_write(writes);
  std::vector<std::vector<std::byte>> outs(kD, std::vector<std::byte>(kB));
  std::vector<ReadOp> reads;
  for (std::uint32_t d = 0; d < kD; ++d) reads.push_back({d, d, outs[d]});
  disks->parallel_read(reads);
  for (std::uint32_t d = 0; d < kD; ++d) EXPECT_EQ(outs[d], blocks[d]);
  EXPECT_EQ(disks->stats().parallel_ios, 2u);
  disks->sync();
  disks->harvest_backend_stats();
  const auto& u = disks->engine_stats().uring;
  EXPECT_TRUE(u.active());
  EXPECT_EQ(u.rings, kD);
  EXPECT_GE(u.sqes, 2 * kD);
  EXPECT_GE(u.enters, 2 * kD);
  EXPECT_FALSE(u.completion_ns.empty());
}

}  // namespace
}  // namespace embsp::em
