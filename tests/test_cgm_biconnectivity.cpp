// Biconnected components (Table 1, Group C).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cgm/graph_biconnectivity.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {
namespace {

/// Both labelings must induce the same partition of the edge set.
void expect_same_partition(std::span<const std::uint64_t> got,
                           std::span<const std::uint64_t> want) {
  ASSERT_EQ(got.size(), want.size());
  std::map<std::uint64_t, std::uint64_t> fwd, bwd;
  for (std::size_t e = 0; e < got.size(); ++e) {
    auto [f, fi] = fwd.emplace(got[e], want[e]);
    EXPECT_EQ(f->second, want[e]) << "edge " << e;
    auto [b, bi] = bwd.emplace(want[e], got[e]);
    EXPECT_EQ(b->second, got[e]) << "edge " << e;
  }
}

/// A connected random graph: random tree + extra random edges.
std::vector<util::Edge> connected_graph(std::uint64_t n, std::uint64_t extra,
                                        std::uint64_t seed) {
  auto parent = util::random_tree(n, seed);
  std::vector<util::Edge> edges;
  for (std::uint64_t x = 0; x < n; ++x) {
    if (parent[x] != x) edges.push_back({parent[x], x});
  }
  util::Rng rng(seed ^ 0xb1c0);
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (const auto& e : edges) seen.insert(std::minmax(e.u, e.v));
  while (extra > 0) {
    auto a = rng.below(n);
    auto b = rng.below(n);
    if (a == b) continue;
    auto key = std::minmax(a, b);
    if (!seen.insert(key).second) continue;
    edges.push_back({a, b});
    --extra;
  }
  return edges;
}

TEST(Biconnectivity, BruteForceSanity) {
  // Two triangles sharing vertex 0: two blocks.
  std::vector<util::Edge> edges{{0, 1}, {1, 2}, {0, 2},
                                {0, 3}, {3, 4}, {0, 4}};
  auto block = biconnected_bruteforce(5, edges);
  EXPECT_EQ(block[0], block[1]);
  EXPECT_EQ(block[1], block[2]);
  EXPECT_EQ(block[3], block[4]);
  EXPECT_EQ(block[4], block[5]);
  EXPECT_NE(block[0], block[3]);
}

TEST(Biconnectivity, TwoTrianglesSharedVertex) {
  std::vector<util::Edge> edges{{0, 1}, {1, 2}, {0, 2},
                                {0, 3}, {3, 4}, {0, 4}};
  DirectExec exec;
  auto out = cgm_biconnected_components(exec, 5, edges, 2);
  expect_same_partition(out.edge_block, biconnected_bruteforce(5, edges));
  EXPECT_EQ(out.num_blocks, 2u);
}

TEST(Biconnectivity, PathIsAllBridges) {
  std::vector<util::Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  DirectExec exec;
  auto out = cgm_biconnected_components(exec, 5, edges, 2);
  EXPECT_EQ(out.num_blocks, 4u);  // every edge its own block
}

TEST(Biconnectivity, CycleIsOneBlock) {
  std::vector<util::Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
  DirectExec exec;
  auto out = cgm_biconnected_components(exec, 5, edges, 2);
  EXPECT_EQ(out.num_blocks, 1u);
}

TEST(Biconnectivity, BarbellGraph) {
  // Two cycles joined by a bridge path: 3 blocks.
  std::vector<util::Edge> edges{{0, 1}, {1, 2}, {2, 0},   // cycle A
                                {2, 3}, {3, 4},           // bridge path
                                {4, 5}, {5, 6}, {6, 4}};  // cycle B
  DirectExec exec;
  auto out = cgm_biconnected_components(exec, 7, edges, 4);
  expect_same_partition(out.edge_block, biconnected_bruteforce(7, edges));
  EXPECT_EQ(out.num_blocks, 4u);  // A, two bridges, B
}

class BiconnectivitySweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>> {};

TEST_P(BiconnectivitySweep, MatchesBruteForce) {
  const auto [n, extra, v] = GetParam();
  auto edges = connected_graph(n, extra, 97 * n + extra + v);
  DirectExec exec;
  auto out = cgm_biconnected_components(exec, n, edges, v);
  expect_same_partition(out.edge_block, biconnected_bruteforce(n, edges));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BiconnectivitySweep,
    ::testing::Values(
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>{8, 0, 2},
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>{30, 5, 4},
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>{100, 40, 8},
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>{300, 10, 8},
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>{300, 300,
                                                                16}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "v" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Biconnectivity, OnEmMachines) {
  auto edges = connected_graph(150, 60, 1234);
  auto want = biconnected_bruteforce(150, edges);
  sim::SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.em = {1 << 22, 4, 256, 1.0};
  SeqEmExec seq(cfg);
  expect_same_partition(
      cgm_biconnected_components(seq, 150, edges, 8).edge_block, want);
  sim::SimConfig pcfg;
  pcfg.machine.p = 2;
  pcfg.machine.em = {1 << 22, 2, 256, 1.0};
  ParEmExec par(pcfg);
  expect_same_partition(
      cgm_biconnected_components(par, 150, edges, 8).edge_block, want);
}

TEST(Biconnectivity, DisconnectedGraphRejected) {
  std::vector<util::Edge> edges{{0, 1}, {2, 3}};
  DirectExec exec;
  EXPECT_THROW(cgm_biconnected_components(exec, 4, edges, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace embsp::cgm
