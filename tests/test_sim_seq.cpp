#include <gtest/gtest.h>

#include "bsp/direct_runtime.hpp"
#include "sim/seq_simulator.hpp"
#include "test_programs.hpp"

namespace embsp::sim {
namespace {

using embsp::testing::BigMessageProgram;
using embsp::testing::EmptyMessageProgram;
using embsp::testing::IrregularProgram;
using embsp::testing::PrefixSumProgram;
using embsp::testing::RingProgram;

SimConfig small_config(std::uint32_t v, std::size_t D, std::size_t B,
                       std::size_t mu, std::size_t gamma,
                       RoutingMode mode = RoutingMode::compact) {
  SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = v;
  cfg.machine.em.D = D;
  cfg.machine.em.B = B;
  cfg.machine.em.M = std::max<std::size_t>(D * B, 8 * (mu + B));
  cfg.mu = mu;
  cfg.gamma = gamma;
  cfg.routing = mode;
  return cfg;
}

/// Runs `prog` on both the direct runtime and the sequential simulator and
/// asserts identical results (per-processor serialized final states).
template <bsp::Program P>
void expect_equivalent(const P& prog, SimConfig cfg,
                       const std::function<typename P::State(std::uint32_t)>&
                           make_state) {
  using State = typename P::State;
  const std::uint32_t v = cfg.machine.bsp.v;
  std::vector<std::vector<std::byte>> direct_states(v), sim_states(v);

  bsp::DirectRuntime rt;
  auto direct = rt.run<P>(prog, v, make_state,
                          [&](std::uint32_t pid, State& s) {
                            util::Writer w;
                            s.serialize(w);
                            direct_states[pid] = w.take();
                          });

  SeqSimulator sim(cfg);
  auto result = sim.run<P>(prog, make_state, [&](std::uint32_t pid, State& s) {
    util::Writer w;
    s.serialize(w);
    sim_states[pid] = w.take();
  });

  for (std::uint32_t i = 0; i < v; ++i) {
    EXPECT_EQ(direct_states[i], sim_states[i]) << "processor " << i;
  }
  EXPECT_EQ(result.lambda(), direct.lambda());
  // The BSP-level communication accounting must agree between executors.
  ASSERT_EQ(result.costs.supersteps.size(), direct.costs.supersteps.size());
  for (std::size_t s = 0; s < result.costs.supersteps.size(); ++s) {
    EXPECT_EQ(result.costs.supersteps[s].max_bytes_sent,
              direct.costs.supersteps[s].max_bytes_sent)
        << "superstep " << s;
    EXPECT_EQ(result.costs.supersteps[s].total_bytes,
              direct.costs.supersteps[s].total_bytes)
        << "superstep " << s;
  }
}

TEST(SeqSimulator, PrefixSumMatchesDirect) {
  PrefixSumProgram prog;
  expect_equivalent(prog, small_config(16, 4, 128, 64, 600),
                    [](std::uint32_t pid) {
                      PrefixSumProgram::State s;
                      s.value = pid * 3 + 1;
                      return s;
                    });
}

TEST(SeqSimulator, RingMatchesDirect) {
  RingProgram prog;
  prog.rounds = 5;
  prog.payload_words = 16;
  expect_equivalent(prog, small_config(8, 2, 128, 2048, 4096),
                    [](std::uint32_t pid) {
                      RingProgram::State s;
                      s.data = {pid, pid * 2};
                      return s;
                    });
}

TEST(SeqSimulator, IrregularMatchesDirect) {
  IrregularProgram prog;
  expect_equivalent(prog, small_config(12, 4, 128, 64, 4096),
                    [](std::uint32_t) { return IrregularProgram::State{}; });
}

TEST(SeqSimulator, EmptyMessagesMatchDirect) {
  EmptyMessageProgram prog;
  expect_equivalent(prog, small_config(6, 2, 64, 32, 256),
                    [](std::uint32_t) { return EmptyMessageProgram::State{}; });
}

TEST(SeqSimulator, BigMessageMatchesDirect) {
  BigMessageProgram prog;
  prog.words = 2000;  // 16 KB message across many 128-byte blocks
  expect_equivalent(prog, small_config(4, 4, 128, 64, 17000),
                    [](std::uint32_t) { return BigMessageProgram::State{}; });
}

TEST(SeqSimulator, PaddedModeProducesSameResults) {
  PrefixSumProgram prog;
  expect_equivalent(prog,
                    small_config(16, 4, 128, 64, 600, RoutingMode::padded),
                    [](std::uint32_t pid) {
                      PrefixSumProgram::State s;
                      s.value = pid + 7;
                      return s;
                    });
}

TEST(SeqSimulator, DeterministicModeProducesSameResults) {
  IrregularProgram prog;
  expect_equivalent(prog,
                    small_config(12, 4, 128, 64, 4096,
                                 RoutingMode::deterministic),
                    [](std::uint32_t) { return IrregularProgram::State{}; });
}

TEST(SeqSimulator, ParallelEngineProducesSameResults) {
  IrregularProgram prog;
  auto cfg = small_config(12, 4, 128, 64, 4096);
  cfg.io_engine = em::IoEngine::parallel;
  expect_equivalent(prog, cfg,
                    [](std::uint32_t) { return IrregularProgram::State{}; });
}

TEST(SimLayout, GroupContextsMustFitM) {
  // §5.1 gives k = floor(M/mu): one group's contexts get exactly the
  // model's memory M, no slack.  With B = 128 and mu = 124 a context slot
  // is exactly one 128-byte block, so M = 1024 admits k = 8 and nothing
  // more.
  SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = 16;
  cfg.machine.em.D = 2;
  cfg.machine.em.B = 128;
  cfg.machine.em.M = 1024;
  cfg.mu = 124;
  cfg.gamma = 256;

  cfg.k = 8;  // 8 * 128 = 1024 == M: exactly at the bound, accepted
  const auto layout = SimLayout::compute(cfg, 16);
  EXPECT_EQ(layout.k, 8u);
  EXPECT_EQ(layout.context_slot_bytes, 128u);

  cfg.k = 9;  // 9 * 128 = 1152 > M: one block over, rejected (typed —
              // callers can distinguish a layout bound from bad arguments)
  EXPECT_THROW(SimLayout::compute(cfg, 16), LayoutError);
}

TEST(SeqSimulator, SingleDiskWorks) {
  PrefixSumProgram prog;
  expect_equivalent(prog, small_config(8, 1, 128, 64, 400),
                    [](std::uint32_t pid) {
                      PrefixSumProgram::State s;
                      s.value = pid;
                      return s;
                    });
}

TEST(SeqSimulator, GroupSizeOneWorks) {
  auto cfg = small_config(8, 2, 128, 64, 400);
  cfg.k = 1;
  PrefixSumProgram prog;
  expect_equivalent(prog, cfg, [](std::uint32_t pid) {
    PrefixSumProgram::State s;
    s.value = pid;
    return s;
  });
}

TEST(SeqSimulator, GroupSizeEqualsVWorks) {
  auto cfg = small_config(8, 2, 128, 64, 400);
  cfg.k = 8;
  cfg.machine.em.M = 1 << 20;
  PrefixSumProgram prog;
  expect_equivalent(prog, cfg, [](std::uint32_t pid) {
    PrefixSumProgram::State s;
    s.value = pid;
    return s;
  });
}

TEST(SeqSimulator, DeterministicAcrossRuns) {
  IrregularProgram prog;
  auto cfg = small_config(10, 3, 128, 64, 4096);
  std::vector<std::uint64_t> sums[2];
  for (int run = 0; run < 2; ++run) {
    SeqSimulator sim(cfg);
    sim.run<IrregularProgram>(
        prog, [](std::uint32_t) { return IrregularProgram::State{}; },
        [&](std::uint32_t, IrregularProgram::State& s) {
          sums[run].push_back(s.checksum);
        });
  }
  EXPECT_EQ(sums[0], sums[1]);
}

TEST(SeqSimulator, DifferentSeedsSameResults) {
  // The randomization affects only placement, never program semantics.
  IrregularProgram prog;
  auto cfg = small_config(10, 3, 128, 64, 4096);
  std::vector<std::uint64_t> sums[2];
  for (int run = 0; run < 2; ++run) {
    cfg.seed = run * 991 + 17;
    SeqSimulator sim(cfg);
    sim.run<IrregularProgram>(
        prog, [](std::uint32_t) { return IrregularProgram::State{}; },
        [&](std::uint32_t, IrregularProgram::State& s) {
          sums[run].push_back(s.checksum);
        });
  }
  EXPECT_EQ(sums[0], sums[1]);
}

TEST(SeqSimulator, GammaViolationDiagnosed) {
  PrefixSumProgram prog;
  auto cfg = small_config(16, 2, 128, 64, 40);  // gamma far too small
  SeqSimulator sim(cfg);
  EXPECT_THROW(sim.run<PrefixSumProgram>(
                   prog,
                   [](std::uint32_t pid) {
                     PrefixSumProgram::State s;
                     s.value = pid;
                     return s;
                   },
                   [](std::uint32_t, PrefixSumProgram::State&) {}),
               std::runtime_error);
}

TEST(SeqSimulator, MuViolationDiagnosed) {
  RingProgram prog;
  prog.rounds = 3;
  prog.payload_words = 1000;
  auto cfg = small_config(4, 2, 128, 64, 1 << 16);  // mu too small
  SeqSimulator sim(cfg);
  EXPECT_THROW(
      sim.run<RingProgram>(
          prog,
          [](std::uint32_t) {
            RingProgram::State s;
            s.data.resize(100);
            return s;
          },
          [](std::uint32_t, RingProgram::State&) {}),
      std::runtime_error);
}

TEST(SeqSimulator, IoIsFullyBlockedAndParallel) {
  PrefixSumProgram prog;
  auto cfg = small_config(64, 4, 128, 64, 4096);
  SeqSimulator sim(cfg);
  auto result = sim.run<PrefixSumProgram>(
      prog,
      [](std::uint32_t pid) {
        PrefixSumProgram::State s;
        s.value = pid;
        return s;
      },
      [](std::uint32_t, PrefixSumProgram::State&) {});
  // Context traffic alone guarantees decent utilization; the randomized
  // message placement should keep overall utilization well above 1/D.
  EXPECT_GT(result.total_io.utilization(4), 0.5);
}

TEST(SeqSimulator, DiskSpaceBounded) {
  // Lemma 1: O(v*mu / DB) blocks per disk.
  RingProgram prog;
  prog.rounds = 6;
  prog.payload_words = 32;
  auto cfg = small_config(32, 4, 128, 2048, 4096);
  SeqSimulator sim(cfg);
  auto result = sim.run<RingProgram>(
      prog,
      [](std::uint32_t pid) {
        RingProgram::State s;
        s.data = {pid};
        return s;
      },
      [](std::uint32_t, RingProgram::State&) {});
  const double v_mu_over_db =
      32.0 * 2048 / (4 * 128);  // v*mu/(D*B) blocks per disk
  EXPECT_LT(static_cast<double>(result.max_tracks_per_disk),
            30.0 * v_mu_over_db);
}

TEST(SeqSimulator, MeasuredRequirementsHelper) {
  RingProgram prog;
  prog.rounds = 3;
  prog.payload_words = 8;
  SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = 8;
  cfg.machine.em = {1 << 16, 2, 128, 1.0};
  std::vector<std::size_t> sizes;
  auto result = simulate_measured<RingProgram>(
      prog, cfg,
      [](std::uint32_t pid) {
        RingProgram::State s;
        s.data = {pid};
        return s;
      },
      [&](std::uint32_t, RingProgram::State& s) {
        sizes.push_back(s.data.size());
      });
  EXPECT_EQ(result.lambda(), 4u);
  for (auto n : sizes) EXPECT_EQ(n, 4u);  // 1 initial + 3 hops appended
}

}  // namespace
}  // namespace embsp::sim
