// Group A algorithms (sort / permutation / transpose) across all three
// executors, with parameterized sweeps over machine shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cgm/permutation.hpp"
#include "cgm/primitives.hpp"
#include "cgm/sort.hpp"
#include "cgm/transpose.hpp"
#include "sim/trace.hpp"

#include <sstream>
#include "util/workloads.hpp"

namespace embsp::cgm {
namespace {

struct KeyLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

sim::SimConfig em_config(std::uint32_t p, std::size_t D, std::size_t B) {
  sim::SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.em.D = D;
  cfg.machine.em.B = B;
  cfg.machine.em.M = 1 << 22;
  return cfg;
}

TEST(CgmSort, DirectSmall) {
  auto keys = util::random_keys(500, 1);
  DirectExec exec;
  auto out = cgm_sort<std::uint64_t, KeyLess>(exec, keys, 8);
  auto want = keys;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(out.sorted, want);
  EXPECT_EQ(out.exec.lambda, 4u);
}

TEST(CgmSort, HandlesDuplicatesAndSortedInputs) {
  DirectExec exec;
  std::vector<std::uint64_t> dup(300, 7);
  for (std::size_t i = 0; i < dup.size(); i += 3) dup[i] = 3;
  auto out = cgm_sort<std::uint64_t, KeyLess>(exec, dup, 6);
  auto want = dup;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(out.sorted, want);

  std::vector<std::uint64_t> sorted(256);
  std::iota(sorted.begin(), sorted.end(), 0u);
  EXPECT_EQ((cgm_sort<std::uint64_t, KeyLess>(exec, sorted, 8).sorted), sorted);

  auto reversed = sorted;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_EQ((cgm_sort<std::uint64_t, KeyLess>(exec, reversed, 8).sorted),
            sorted);
}

TEST(CgmSort, SingleProcessorAndTinyInputs) {
  DirectExec exec;
  auto keys = util::random_keys(40, 2);
  auto want = keys;
  std::sort(want.begin(), want.end());
  EXPECT_EQ((cgm_sort<std::uint64_t, KeyLess>(exec, keys, 1).sorted), want);
  // More processors than records.
  auto few = util::random_keys(5, 3);
  auto want_few = few;
  std::sort(want_few.begin(), want_few.end());
  EXPECT_EQ((cgm_sort<std::uint64_t, KeyLess>(exec, few, 8).sorted), want_few);
  // Empty input.
  EXPECT_TRUE((cgm_sort<std::uint64_t, KeyLess>(
                   exec, std::span<const std::uint64_t>{}, 4))
                  .sorted.empty());
}

TEST(CgmSort, RegularSamplingBalances) {
  auto keys = util::random_keys(4096, 4);
  DirectExec exec;
  auto out = cgm_sort<std::uint64_t, KeyLess>(exec, keys, 16);
  for (auto sz : out.slab_sizes) {
    EXPECT_LT(sz, 2 * 4096 / 16 + 64);  // regular sampling bound ~2n/v
  }
}

struct SortSweepParam {
  std::uint32_t p;
  std::uint32_t v;
  std::size_t D;
  std::size_t B;
  std::size_t n;
};

class CgmSortEmSweep : public ::testing::TestWithParam<SortSweepParam> {};

TEST_P(CgmSortEmSweep, MatchesStdSortOnEmMachines) {
  const auto prm = GetParam();
  auto keys = util::random_keys(prm.n, 17 + prm.n);
  auto want = keys;
  std::stable_sort(want.begin(), want.end());

  if (prm.p == 1) {
    SeqEmExec exec(em_config(1, prm.D, prm.B));
    auto out = cgm_sort<std::uint64_t, KeyLess>(exec, keys, prm.v);
    EXPECT_EQ(out.sorted, want);
    EXPECT_EQ(out.exec.lambda, 4u);
    ASSERT_TRUE(out.exec.sim.has_value());
    EXPECT_GT(out.exec.sim->total_io.parallel_ios, 0u);
  } else {
    ParEmExec exec(em_config(prm.p, prm.D, prm.B));
    auto out = cgm_sort<std::uint64_t, KeyLess>(exec, keys, prm.v);
    EXPECT_EQ(out.sorted, want);
    EXPECT_EQ(out.exec.lambda, 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MachineShapes, CgmSortEmSweep,
    ::testing::Values(SortSweepParam{1, 8, 1, 128, 1000},
                      SortSweepParam{1, 8, 4, 128, 1000},
                      SortSweepParam{1, 16, 2, 256, 2000},
                      SortSweepParam{1, 4, 8, 64, 500},
                      SortSweepParam{2, 8, 2, 128, 1000},
                      SortSweepParam{4, 16, 2, 128, 2000},
                      SortSweepParam{4, 8, 4, 256, 1500}),
    [](const auto& info) {
      const auto& q = info.param;
      return "p" + std::to_string(q.p) + "v" + std::to_string(q.v) + "D" +
             std::to_string(q.D) + "B" + std::to_string(q.B) + "n" +
             std::to_string(q.n);
    });

TEST(CgmPermutation, AppliesPermutation) {
  const std::size_t n = 1000;
  auto values = util::random_keys(n, 5);
  auto perm = util::random_permutation(n, 6);
  DirectExec exec;
  auto out = cgm_permute(exec, values, perm, 8);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.values[perm[i]], values[i]);
  }
  EXPECT_EQ(out.exec.lambda, 2u);
}

TEST(CgmPermutation, IdentityAndReversal) {
  const std::size_t n = 128;
  auto values = util::random_keys(n, 7);
  std::vector<std::uint64_t> ident(n), rev(n);
  std::iota(ident.begin(), ident.end(), 0u);
  for (std::size_t i = 0; i < n; ++i) rev[i] = n - 1 - i;
  DirectExec exec;
  EXPECT_EQ(cgm_permute(exec, values, ident, 4).values, values);
  auto out = cgm_permute(exec, values, rev, 4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out.values[n - 1 - i],
                                                values[i]);
}

TEST(CgmPermutation, OnEmMachine) {
  const std::size_t n = 2000;
  auto values = util::random_keys(n, 8);
  auto perm = util::random_permutation(n, 9);
  SeqEmExec exec(em_config(1, 4, 128));
  auto out = cgm_permute(exec, values, perm, 16);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.values[perm[i]], values[i]);
  }
}

TEST(CgmPermutation, OnParallelEmMachine) {
  const std::size_t n = 1200;
  auto values = util::random_keys(n, 10);
  auto perm = util::random_permutation(n, 11);
  ParEmExec exec(em_config(4, 2, 128));
  auto out = cgm_permute(exec, values, perm, 16);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.values[perm[i]], values[i]);
  }
}

std::vector<std::uint64_t> reference_transpose(
    std::span<const std::uint64_t> m, std::uint64_t r, std::uint64_t c) {
  std::vector<std::uint64_t> t(r * c);
  for (std::uint64_t i = 0; i < r; ++i) {
    for (std::uint64_t j = 0; j < c; ++j) {
      t[j * r + i] = m[i * c + j];
    }
  }
  return t;
}

TEST(CgmTranspose, SquareMatrix) {
  const std::uint64_t r = 32, c = 32;
  auto m = util::random_keys(r * c, 12);
  DirectExec exec;
  auto out = cgm_transpose(exec, m, r, c, 8);
  EXPECT_EQ(out.data, reference_transpose(m, r, c));
  EXPECT_EQ(out.exec.lambda, 2u);
}

TEST(CgmTranspose, RectangularMatrices) {
  DirectExec exec;
  for (auto [r, c] : {std::pair<std::uint64_t, std::uint64_t>{5, 40},
                      {40, 5},
                      {1, 64},
                      {64, 1},
                      {7, 13}}) {
    auto m = util::random_keys(r * c, 13 + r);
    auto out = cgm_transpose(exec, m, r, c, 4);
    EXPECT_EQ(out.data, reference_transpose(m, r, c)) << r << "x" << c;
  }
}

TEST(CgmTranspose, DoubleTransposeIsIdentity) {
  const std::uint64_t r = 24, c = 56;
  auto m = util::random_keys(r * c, 14);
  DirectExec exec;
  auto once = cgm_transpose(exec, m, r, c, 8);
  auto twice = cgm_transpose(exec, once.data, c, r, 8);
  EXPECT_EQ(twice.data, m);
}

TEST(CgmTranspose, OnEmMachine) {
  const std::uint64_t r = 48, c = 32;
  auto m = util::random_keys(r * c, 15);
  SeqEmExec exec(em_config(1, 4, 128));
  auto out = cgm_transpose(exec, m, r, c, 8);
  EXPECT_EQ(out.data, reference_transpose(m, r, c));
}

TEST(CgmTranspose, OnParallelEmMachine) {
  const std::uint64_t r = 40, c = 30;
  auto m = util::random_keys(r * c, 16);
  ParEmExec exec(em_config(2, 2, 128));
  auto out = cgm_transpose(exec, m, r, c, 8);
  EXPECT_EQ(out.data, reference_transpose(m, r, c));
}

TEST(CostTrace, CsvHasOneRowPerSuperstep) {
  auto keys = util::random_keys(2000, 77);
  SeqEmExec exec(em_config(1, 2, 256));
  auto out = cgm_sort<std::uint64_t, KeyLess>(exec, keys, 8);
  std::ostringstream csv;
  sim::write_cost_csv(csv, *out.exec.sim);
  std::size_t lines = 0;
  for (char c : csv.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1 + out.exec.lambda);  // header + one row per superstep
  EXPECT_NE(csv.str().find("parallel_ios"), std::string::npos);
}

TEST(CgmSortStress, LargeInputAcrossExecutors) {
  // A larger integration run: 2^19 keys through the parallel EM simulator.
  const std::size_t n = 1 << 19;
  auto keys = util::random_keys(n, 1234);
  ParEmExec exec(em_config(4, 4, 4096));
  auto out = cgm_sort<std::uint64_t, KeyLess>(exec, keys, 64);
  EXPECT_TRUE(std::is_sorted(out.sorted.begin(), out.sorted.end()));
  EXPECT_EQ(out.sorted.size(), n);
  EXPECT_EQ(out.exec.lambda, 4u);
}

TEST(Primitives, FenwickPrefixSums) {
  Fenwick f(10);
  f.add(0, 5);
  f.add(3, 2);
  f.add(9, 7);
  EXPECT_EQ(f.prefix(0), 0u);
  EXPECT_EQ(f.prefix(1), 5u);
  EXPECT_EQ(f.prefix(4), 7u);
  EXPECT_EQ(f.prefix(10), 14u);
}

}  // namespace
}  // namespace embsp::cgm
