#include <gtest/gtest.h>
#include <sys/time.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <span>
#include <numeric>

#include "em/backend.hpp"
#include "em/disk_array.hpp"
#include "em/linked_buckets.hpp"
#include "em/striped_region.hpp"
#include "em/track_allocator.hpp"
#include "util/rng.hpp"

namespace embsp::em {
namespace {

std::vector<std::byte> pattern_block(std::size_t size, std::uint8_t tag) {
  std::vector<std::byte> b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::byte>(static_cast<std::uint8_t>(tag + i));
  }
  return b;
}

TEST(Disk, ReadBackWritten) {
  Disk d(64, make_memory_backend());
  auto block = pattern_block(64, 7);
  d.write_track(3, block);
  std::vector<std::byte> out(64);
  d.read_track(3, out);
  EXPECT_EQ(out, block);
  EXPECT_EQ(d.tracks_used(), 4u);
}

TEST(Disk, UnwrittenTrackReadsZero) {
  Disk d(32, make_memory_backend());
  std::vector<std::byte> out(32, std::byte{0xFF});
  d.read_track(10, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(Disk, WrongSizeThrows) {
  Disk d(64, make_memory_backend());
  std::vector<std::byte> small(32);
  EXPECT_THROW(d.read_track(0, small), std::invalid_argument);
  EXPECT_THROW(d.write_track(0, small), std::invalid_argument);
}

TEST(Disk, CapacityEnforced) {
  Disk d(16, make_memory_backend(), 4);
  std::vector<std::byte> b(16);
  d.write_track(3, b);
  EXPECT_THROW(d.write_track(4, b), std::out_of_range);
}

TEST(FileBackend, PersistsAcrossReadWrite) {
  const auto path =
      (std::filesystem::temp_directory_path() / "embsp_test_disk.bin")
          .string();
  Disk d(128, make_file_backend(path));
  auto b0 = pattern_block(128, 1);
  auto b1 = pattern_block(128, 2);
  d.write_track(0, b0);
  d.write_track(5, b1);
  std::vector<std::byte> out(128);
  d.read_track(0, out);
  EXPECT_EQ(out, b0);
  d.read_track(5, out);
  EXPECT_EQ(out, b1);
  d.read_track(2, out);  // hole reads zero
  for (auto c : out) EXPECT_EQ(c, std::byte{0});
}

TEST(FileBackend, OffsetsBeyondFourGiB) {
  // Regression: the old FILE*-based backend seeked with a cast to long,
  // which truncates large offsets on ILP32/LLP64 platforms.  The pread/
  // pwrite backend must address the full 64-bit offset space.  The file is
  // sparse, so this test touches > 4 GiB of offsets but only a few blocks
  // of actual disk space.
  const auto path =
      (std::filesystem::temp_directory_path() / "embsp_test_big.bin")
          .string();
  constexpr std::size_t kB = 1 << 20;  // 1 MiB blocks
  constexpr std::uint64_t kFarTrack = 4100;  // offset 4100 MiB > 4 GiB
  Disk d(kB, make_file_backend(path));
  auto far = pattern_block(kB, 42);
  auto near = pattern_block(kB, 17);
  d.write_track(kFarTrack, far);
  d.write_track(1, near);
  std::vector<std::byte> out(kB);
  d.read_track(kFarTrack, out);
  EXPECT_EQ(out, far);
  d.read_track(1, out);
  EXPECT_EQ(out, near);
  d.read_track(4099, out);  // hole just below the 4 GiB boundary
  for (auto c : out) {
    ASSERT_EQ(c, std::byte{0});
  }
  EXPECT_EQ(d.tracks_used(), kFarTrack + 1);
}

TEST(DiskArray, ParallelIoCountsOnce) {
  DiskArray arr(4, 64);
  auto b = pattern_block(64, 3);
  std::vector<WriteOp> ops;
  for (std::uint32_t d = 0; d < 4; ++d) ops.push_back({d, 0, b});
  arr.parallel_write(ops);
  EXPECT_EQ(arr.stats().parallel_ios, 1u);
  EXPECT_EQ(arr.stats().blocks_written, 4u);
  EXPECT_DOUBLE_EQ(arr.stats().utilization(4), 1.0);
}

TEST(DiskArray, DuplicateDiskInOneIoThrows) {
  DiskArray arr(4, 64);
  auto b = pattern_block(64, 3);
  std::vector<WriteOp> ops{{1, 0, b}, {1, 1, b}};
  EXPECT_THROW(arr.parallel_write(ops), std::invalid_argument);
  // Array stays usable after the rejected operation.
  std::vector<WriteOp> ok{{1, 0, b}};
  arr.parallel_write(ok);
  EXPECT_EQ(arr.stats().parallel_ios, 1u);
}

TEST(DiskArray, EmptyIoThrows) {
  DiskArray arr(2, 64);
  std::vector<ReadOp> ops;
  EXPECT_THROW(arr.parallel_read(ops), std::invalid_argument);
}

TEST(DiskArray, SingleDiskIoHasLowUtilization) {
  DiskArray arr(8, 64);
  auto b = pattern_block(64, 1);
  for (int i = 0; i < 8; ++i) {
    std::vector<WriteOp> ops{{0, static_cast<std::uint64_t>(i), b}};
    arr.parallel_write(ops);
  }
  EXPECT_EQ(arr.stats().parallel_ios, 8u);
  EXPECT_DOUBLE_EQ(arr.stats().utilization(8), 1.0 / 8.0);
}

TEST(TrackAllocator, RegionsAreConsecutive) {
  TrackAllocator a;
  EXPECT_EQ(a.reserve_region(10), 0u);
  EXPECT_EQ(a.reserve_region(5), 10u);
  EXPECT_EQ(a.alloc_track(), 15u);
}

TEST(TrackAllocator, RecyclesFreedTracks) {
  TrackAllocator a;
  const auto t0 = a.alloc_track();
  const auto t1 = a.alloc_track();
  a.release_track(t0);
  EXPECT_EQ(a.alloc_track(), t0);
  EXPECT_EQ(a.alloc_track(), t1 + 1);
}

TEST(StripedRegion, RoundTripAndPlacement) {
  DiskArray arr(3, 32);
  TrackAllocators alloc(3);
  auto region = StripedRegion::reserve(arr, alloc, 10);
  // Placement: block g on disk g mod D.
  for (std::uint64_t g = 0; g < 10; ++g) {
    EXPECT_EQ(region.location(g).first, g % 3);
  }
  std::vector<std::byte> data(10 * 32);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(static_cast<std::uint8_t>(i * 13));
  }
  region.write_blocks(0, 10, data);
  std::vector<std::byte> out(10 * 32);
  region.read_blocks(0, 10, out);
  EXPECT_EQ(out, data);
}

TEST(StripedRegion, FullDiskParallelism) {
  DiskArray arr(4, 32);
  TrackAllocators alloc(4);
  auto region = StripedRegion::reserve(arr, alloc, 16);
  std::vector<std::byte> data(16 * 32, std::byte{1});
  region.write_blocks(0, 16, data);
  // 16 blocks over 4 disks = 4 fully parallel writes.
  EXPECT_EQ(arr.stats().parallel_ios, 4u);
  EXPECT_DOUBLE_EQ(arr.stats().utilization(4), 1.0);
}

TEST(StripedRegion, PartialRangeRead) {
  DiskArray arr(2, 16);
  TrackAllocators alloc(2);
  auto region = StripedRegion::reserve(arr, alloc, 8);
  std::vector<std::byte> data(8 * 16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(static_cast<std::uint8_t>(i));
  }
  region.write_blocks(0, 8, data);
  std::vector<std::byte> out(3 * 16);
  region.read_blocks(2, 3, out);
  EXPECT_EQ(std::memcmp(out.data(), data.data() + 2 * 16, 3 * 16), 0);
}

TEST(StripedRegion, OutOfRangeThrows) {
  DiskArray arr(2, 16);
  TrackAllocators alloc(2);
  auto region = StripedRegion::reserve(arr, alloc, 4);
  std::vector<std::byte> buf(2 * 16);
  EXPECT_THROW(region.read_blocks(3, 2, buf), std::out_of_range);
  EXPECT_THROW(region.read_blocks(0, 1, buf), std::invalid_argument);
}

TEST(StripedRegion, TwoRegionsDoNotOverlap) {
  DiskArray arr(2, 16);
  TrackAllocators alloc(2);
  auto r1 = StripedRegion::reserve(arr, alloc, 6);
  auto r2 = StripedRegion::reserve(arr, alloc, 6);
  std::vector<std::byte> a(6 * 16, std::byte{0xAA});
  std::vector<std::byte> b(6 * 16, std::byte{0xBB});
  r1.write_blocks(0, 6, a);
  r2.write_blocks(0, 6, b);
  std::vector<std::byte> out(6 * 16);
  r1.read_blocks(0, 6, out);
  EXPECT_EQ(out, a);
  r2.read_blocks(0, 6, out);
  EXPECT_EQ(out, b);
}

TEST(LinkedBuckets, WriteAndDrainRoundTrip) {
  DiskArray arr(4, 64);
  TrackAllocators alloc(4);
  LinkedBuckets buckets(arr, alloc, 4);
  util::Rng rng(1);

  // Write 32 blocks into bucket 2, four at a time.
  std::vector<std::vector<std::byte>> blocks;
  for (int i = 0; i < 32; ++i) blocks.push_back(pattern_block(64, i));
  for (int cycle = 0; cycle < 8; ++cycle) {
    std::vector<LinkedBuckets::OutBlock> out;
    for (int j = 0; j < 4; ++j) {
      out.push_back({2u, blocks[cycle * 4 + j]});
    }
    buckets.write_cycle(out, rng);
  }
  EXPECT_EQ(buckets.bucket_size(2), 32u);

  std::multiset<std::uint8_t> expected, got;
  for (const auto& b : blocks) expected.insert(std::to_integer<std::uint8_t>(b[0]));
  buckets.drain_bucket(2, [&](std::span<const std::byte> b) {
    got.insert(std::to_integer<std::uint8_t>(b[0]));
  });
  EXPECT_EQ(got, expected);
  EXPECT_EQ(buckets.bucket_size(2), 0u);
}

TEST(LinkedBuckets, EachWriteCycleIsOneParallelIo) {
  DiskArray arr(4, 64);
  TrackAllocators alloc(4);
  LinkedBuckets buckets(arr, alloc, 4);
  util::Rng rng(2);
  auto b = pattern_block(64, 0);
  std::vector<LinkedBuckets::OutBlock> out{{0u, b}, {1u, b}, {2u, b}, {3u, b}};
  buckets.write_cycle(out, rng);
  EXPECT_EQ(arr.stats().parallel_ios, 1u);
  EXPECT_EQ(arr.stats().blocks_written, 4u);
}

TEST(LinkedBuckets, TooManyBlocksPerCycleThrows) {
  DiskArray arr(2, 64);
  TrackAllocators alloc(2);
  LinkedBuckets buckets(arr, alloc, 2);
  util::Rng rng(3);
  auto b = pattern_block(64, 0);
  std::vector<LinkedBuckets::OutBlock> out{{0u, b}, {0u, b}, {1u, b}};
  EXPECT_THROW(buckets.write_cycle(out, rng), std::invalid_argument);
}

TEST(LinkedBuckets, RandomPlacementRoughlyBalanced) {
  // Lemma 2's phenomenon at small scale: R blocks of one bucket spread over
  // D disks end up with ~R/D per disk.
  constexpr std::size_t kD = 8;
  constexpr std::size_t kR = 800;
  DiskArray arr(kD, 64);
  TrackAllocators alloc(kD);
  LinkedBuckets buckets(arr, alloc, kD);
  util::Rng rng(4);
  auto b = pattern_block(64, 0);
  for (std::size_t i = 0; i < kR / kD; ++i) {
    std::vector<LinkedBuckets::OutBlock> out;
    for (std::size_t j = 0; j < kD; ++j) out.push_back({0u, b});
    buckets.write_cycle(out, rng);
  }
  for (std::size_t d = 0; d < kD; ++d) {
    const double load = static_cast<double>(buckets.blocks_on_disk(0, d));
    EXPECT_GT(load, 0.5 * kR / kD);
    EXPECT_LT(load, 2.0 * kR / kD);
  }
}

TEST(LinkedBuckets, TracksRecycledAfterDrain) {
  DiskArray arr(2, 64);
  TrackAllocators alloc(2);
  LinkedBuckets buckets(arr, alloc, 2);
  util::Rng rng(5);
  auto b = pattern_block(64, 1);
  for (int round = 0; round < 10; ++round) {
    std::vector<LinkedBuckets::OutBlock> out{{0u, b}, {1u, b}};
    buckets.write_cycle(out, rng);
    buckets.drain_bucket(0, [](std::span<const std::byte>) {});
    buckets.drain_bucket(1, [](std::span<const std::byte>) {});
  }
  // Space is reused: the high-water mark stays near one cycle's worth.
  EXPECT_LE(alloc[0].high_water(), 4u);
  EXPECT_LE(alloc[1].high_water(), 4u);
}


// --- EINTR under a signal storm ---------------------------------------------
// Regression: a timer signal delivered mid-transfer (handler installed
// WITHOUT SA_RESTART, so every blocking syscall can return EINTR) must
// never surface as an IoError or corrupt data — the pread/pwrite/preadv/
// pwritev loops retry EINTR inline, open() and fdatasync() retry it too.

volatile sig_atomic_t g_storm_ticks = 0;

extern "C" void storm_tick(int) { ++g_storm_ticks; }

TEST(FileBackend, SurvivesSignalStorm) {
  const auto path =
      (std::filesystem::temp_directory_path() / "embsp_test_eintr.bin")
          .string();

  struct sigaction sa{};
  sa.sa_handler = storm_tick;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART
  struct sigaction old_sa{};
  ASSERT_EQ(::sigaction(SIGALRM, &sa, &old_sa), 0);

  itimerval storm{};
  storm.it_interval.tv_usec = 200;  // 5 kHz
  storm.it_value.tv_usec = 200;
  itimerval old_timer{};
  ASSERT_EQ(::setitimer(ITIMER_REAL, &storm, &old_timer), 0);

  constexpr std::size_t kBlock = 1 << 16;
  {
    // O_DSYNC writes block on the device flush — the widest EINTR window
    // the backend has.
    auto be = make_file_backend(path, /*keep=*/false, /*sync_writes=*/true);
    std::vector<std::byte> block(kBlock);
    std::vector<std::byte> out(kBlock);
    for (int round = 0; round < 200; ++round) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        block[i] = static_cast<std::byte>(
            static_cast<std::uint8_t>(round * 31 + i));
      }
      const std::uint64_t off = (round % 16) * kBlock;
      ASSERT_NO_THROW(be->write(off, block)) << "round " << round;
      ASSERT_NO_THROW(be->read(off, out)) << "round " << round;
      ASSERT_EQ(std::memcmp(out.data(), block.data(), kBlock), 0)
          << "round " << round;
      // Vectored paths: two fragments per call.
      const std::span<const std::byte> wfrags[2] = {
          std::span<const std::byte>(block).first(kBlock / 2),
          std::span<const std::byte>(block).last(kBlock / 2)};
      ASSERT_NO_THROW(be->write_vec(off + 16 * kBlock, wfrags));
      std::vector<std::byte> lo(kBlock / 2), hi(kBlock / 2);
      const std::span<std::byte> rfrags[2] = {lo, hi};
      ASSERT_NO_THROW(be->read_vec(off + 16 * kBlock, rfrags));
      ASSERT_EQ(std::memcmp(lo.data(), block.data(), kBlock / 2), 0);
      ASSERT_EQ(std::memcmp(hi.data(), block.data() + kBlock / 2, kBlock / 2),
                0);
      if (round % 32 == 0) ASSERT_NO_THROW(be->flush());
    }
  }

  ASSERT_EQ(::setitimer(ITIMER_REAL, &old_timer, nullptr), 0);
  ASSERT_EQ(::sigaction(SIGALRM, &old_sa, nullptr), 0);
  // The storm must actually have fired for the test to mean anything.
  EXPECT_GT(g_storm_ticks, 0);
}

}  // namespace
}  // namespace embsp::em
