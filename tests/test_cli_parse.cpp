// Strict CLI numeric parsing (util/parse.hpp): the helpers behind the
// embsp_cli flag parser.  The CLI-level behavior (diagnostic + exit 2) is
// covered end to end by the cli.badflag ctest entries; these tests pin the
// accepted grammar.
#include <gtest/gtest.h>

#include <cerrno>

#include "em/io_error.hpp"
#include "util/parse.hpp"

namespace embsp::util {
namespace {

TEST(ParseU64, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseU64, RejectsNonNumbers) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("foo"));
  EXPECT_FALSE(parse_u64(" 7"));
  EXPECT_FALSE(parse_u64("7 "));
}

TEST(ParseU64, RejectsTrailingGarbage) {
  // std::stoul would happily return 10 for all of these.
  EXPECT_FALSE(parse_u64("10x"));
  EXPECT_FALSE(parse_u64("10.5"));
  EXPECT_FALSE(parse_u64("10e3"));
  EXPECT_FALSE(parse_u64("10,000"));
}

TEST(ParseU64, RejectsSignsAndOverflow) {
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("+1"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // 2^64
  EXPECT_FALSE(parse_u64("99999999999999999999999"));
}

TEST(ParseU64, RejectsHexAndRadixPrefixes) {
  EXPECT_FALSE(parse_u64("0x10"));
  EXPECT_FALSE(parse_u64("0b101"));
}

TEST(ParseU64Max, EnforcesTheCeiling) {
  EXPECT_EQ(parse_u64_max("4294967295", UINT32_MAX), 4294967295u);
  EXPECT_FALSE(parse_u64_max("4294967296", UINT32_MAX));
}

TEST(ParseF64, AcceptsDecimalsAndExponents) {
  EXPECT_EQ(parse_f64("0"), 0.0);
  EXPECT_EQ(parse_f64("0.002"), 0.002);
  EXPECT_EQ(parse_f64("1e-3"), 1e-3);
  EXPECT_EQ(parse_f64("-2.5"), -2.5);
}

TEST(ParseF64, RejectsGarbageAndNonFinite) {
  EXPECT_FALSE(parse_f64(""));
  EXPECT_FALSE(parse_f64("rate"));
  EXPECT_FALSE(parse_f64("0.5x"));
  // NaN slips through `x < lo || x > hi` range checks (both false), so the
  // parser must refuse it outright; infinities are equally meaningless as
  // flag values.
  EXPECT_FALSE(parse_f64("nan"));
  EXPECT_FALSE(parse_f64("inf"));
  EXPECT_FALSE(parse_f64("-inf"));
  EXPECT_FALSE(parse_f64("1e999"));
}

// EINTR is a signal interrupting the syscall, not a device error: it must
// classify as transient (retried by RetryPolicy) rather than persistent
// (immediate give-up).  Regression companion to the signal-storm test in
// test_em.cpp.
TEST(ClassifyErrno, EintrIsTransient) {
  EXPECT_EQ(em::classify_errno(EINTR), em::IoError::Kind::transient);
}

}  // namespace
}  // namespace embsp::util
