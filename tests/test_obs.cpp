// Observability layer tests: LogHistogram arithmetic, Registry snapshots,
// trace-event output, phase spans — and the end-to-end guarantees ISSUE
// demands of the subsystem:
//   * attaching a recorder does not change simulation results, and
//   * serial vs parallel I/O engine with metrics enabled produce
//     byte-identical SimResult for a fixed seed.
// The JSON snapshot is validated against the golden schema documented in
// obs/metrics.hpp with a small recursive-descent checker (no third-party
// JSON dependency).
#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "em/io_stats.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_events.hpp"
#include "sim/seq_simulator.hpp"
#include "test_programs.hpp"
#include "util/rng.hpp"
#include "util/serialization.hpp"

namespace embsp {
namespace {

using obs::LogHistogram;

// --- Minimal JSON syntax validator ------------------------------------------
//
// Enough of RFC 8259 to reject every malformed snapshot a serialization bug
// could produce: balanced structure, quoted keys, legal literals/numbers.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  // Full RFC 8259 string validation: raw control characters are illegal,
  // escapes are limited to the eight short forms plus \uXXXX, and the
  // bytes between escapes must be well-formed UTF-8 (no truncated or
  // overlong sequences, surrogates, or code points past U+10FFFF).  Strict
  // parsers enforce all of this, so the checker must too — the writer's
  // escaping bugs hid behind a lenient scanner here.
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      const auto u = static_cast<unsigned char>(s_[pos_]);
      if (u < 0x20) return false;  // must have been escaped
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + k >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_ + k])) == 0) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
        ++pos_;
        continue;
      }
      if (u < 0x80) {
        ++pos_;
        continue;
      }
      std::size_t len;
      std::uint32_t cp;
      if ((u & 0xE0) == 0xC0) {
        len = 2;
        cp = u & 0x1Fu;
      } else if ((u & 0xF0) == 0xE0) {
        len = 3;
        cp = u & 0x0Fu;
      } else if ((u & 0xF8) == 0xF0) {
        len = 4;
        cp = u & 0x07u;
      } else {
        return false;  // stray continuation byte or 0xF8-0xFF lead
      }
      if (pos_ + len > s_.size()) return false;
      for (std::size_t k = 1; k < len; ++k) {
        const auto b = static_cast<unsigned char>(s_[pos_ + k]);
        if ((b & 0xC0) != 0x80) return false;
        cp = (cp << 6) | (b & 0x3Fu);
      }
      static constexpr std::uint32_t kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
      if (cp < kMin[len]) return false;                 // overlong
      if (cp >= 0xD800 && cp <= 0xDFFF) return false;   // surrogate
      if (cp > 0x10FFFF) return false;                  // out of range
      pos_ += len;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool json_valid(const std::string& s) { return JsonChecker(s).valid(); }

// --- LogHistogram -----------------------------------------------------------

TEST(LogHistogram, BucketBoundaries) {
  // Bucket i holds values of bit width i: 0 | 1 | 2..3 | 4..7 | ...
  EXPECT_EQ(LogHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(2), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(3), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(4), 3u);
  EXPECT_EQ(LogHistogram::bucket_index(1023), 10u);
  EXPECT_EQ(LogHistogram::bucket_index(1024), 11u);
  EXPECT_EQ(LogHistogram::bucket_index(~std::uint64_t{0}), 64u);
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_lo(i)), i);
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_hi(i)), i);
  }
}

TEST(LogHistogram, RecordAndSummaryStats) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.min(), 0u);  // defined as 0 when empty
  for (std::uint64_t v : {5u, 100u, 7u, 0u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 112u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 28.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // the 0
  EXPECT_EQ(h.bucket_count(3), 2u);  // 5 and 7
  EXPECT_EQ(h.bucket_count(7), 1u);  // 100
}

TEST(LogHistogram, PercentileWithinOneBucket) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  // p100 is exact; lower quantiles are exact to the enclosing power of two.
  EXPECT_EQ(h.percentile(1.0), 100u);
  const auto p50 = h.percentile(0.5);
  EXPECT_GE(p50, 50u);
  EXPECT_LE(p50, 63u);  // bucket_hi(6)
  EXPECT_EQ(h.percentile(0.0), 1u);  // clamped to bucket_hi(1) = 1
}

TEST(LogHistogram, MergeMatchesCombinedRecording) {
  LogHistogram a, b, both;
  for (std::uint64_t v : {1u, 8u, 300u}) { a.record(v); both.record(v); }
  for (std::uint64_t v : {0u, 9u, 4096u}) { b.record(v); both.record(v); }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), both.bucket_count(i)) << "bucket " << i;
  }
}

// --- Registry + JSON snapshot ----------------------------------------------

TEST(Registry, CountersGaugesHistograms) {
  obs::Registry reg;
  EXPECT_TRUE(reg.empty());
  reg.add("a.calls");
  reg.add("a.calls", 4);
  reg.set_gauge("a.ratio", 0.5);
  reg.observe("a.lat", 100);
  reg.observe("a.lat", 200);
  LogHistogram h;
  h.record(7);
  reg.merge_histogram("a.lat", h);
  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(reg.counter("a.calls"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("a.ratio"), 0.5);
  EXPECT_EQ(reg.histogram("a.lat").count(), 3u);
  EXPECT_EQ(reg.counter("missing"), 0u);
  EXPECT_TRUE(reg.histogram("missing").empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

/// Golden-schema check: valid JSON with the exact top-level shape
/// documented in obs/metrics.hpp.
void expect_golden_snapshot(const std::string& json) {
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Registry, JsonSnapshotMatchesGoldenSchema) {
  obs::Registry reg;
  reg.add("engine.stall_ns", 12345);
  reg.set_gauge("sim.group_size", 8.0);
  reg.observe("phase.compute.wall_ns", 1000);
  reg.observe("phase.compute.wall_ns", 3000);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  expect_golden_snapshot(json);
  // Histogram entries carry the full summary block.
  for (const char* key : {"\"count\"", "\"sum\"", "\"min\"", "\"max\"",
                          "\"mean\"", "\"p50\"", "\"p99\"", "\"buckets\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Registry, EmptySnapshotIsStillValidJson) {
  obs::Registry reg;
  std::ostringstream out;
  reg.write_json(out);
  expect_golden_snapshot(out.str());
}

TEST(JsonWriter, NonFiniteDoublesRenderAsNull) {
  // NaN and ±Inf are not JSON; a snapshot containing one must stay
  // parseable, so the writer maps every non-finite double to null.
  std::ostringstream out;
  {
    obs::JsonWriter w(out, /*indent=*/0);
    w.begin_object();
    w.kv("nan", std::numeric_limits<double>::quiet_NaN());
    w.kv("inf", std::numeric_limits<double>::infinity());
    w.kv("ninf", -std::numeric_limits<double>::infinity());
    w.kv("finite", 1.5);
    w.end_object();
  }
  const std::string json = out.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"nan\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ninf\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"finite\": 1.5"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan("), std::string::npos) << json;
}

TEST(Registry, NonFiniteGaugeSnapshotStaysValidJson) {
  // End to end through the registry: a gauge that divides by zero upstream
  // (e.g. a ratio over an empty run) must not corrupt the metrics file.
  obs::Registry reg;
  reg.set_gauge("sim.overlap_ratio", std::numeric_limits<double>::quiet_NaN());
  reg.set_gauge("sim.speedup", std::numeric_limits<double>::infinity());
  reg.add("engine.calls", 1);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  expect_golden_snapshot(json);
  EXPECT_NE(json.find("\"sim.overlap_ratio\": null"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sim.speedup\": null"), std::string::npos) << json;
}

TEST(Registry, EngineStatsExportCoversDrainErrorsAndUring) {
  // The drain-error record (swallowed async errors) and the uring ring
  // counters surface in the metrics snapshot; the gauge for the error kind
  // appears only once an error has actually been swallowed.
  em::EngineStats stats;
  stats.per_disk.resize(1);
  {
    obs::Registry reg;
    em::export_metrics(stats, reg, "engine.");
    EXPECT_EQ(reg.counter("engine.drain_errors"), 0u);
    std::ostringstream out;
    reg.write_json(out);
    EXPECT_EQ(out.str().find("engine.last_drain_error_kind"),
              std::string::npos);
    // No rings → no uring block.
    EXPECT_EQ(out.str().find("engine.uring.sqes"), std::string::npos);
  }
  stats.drain_errors = 3;
  stats.last_drain_error_kind = 1;  // persistent
  stats.last_drain_error = "disk 0 track 7: I/O error";
  stats.uring.rings = 4;
  stats.uring.direct_rings = 4;
  stats.uring.sqes = 128;
  stats.uring.enters = 32;
  stats.uring.fixed_ops = 100;
  stats.uring.bounced_bytes = 4096;
  stats.uring.ring_depth.record(8);
  stats.uring.completion_ns.record(25000);
  {
    obs::Registry reg;
    em::export_metrics(stats, reg, "engine.");
    EXPECT_EQ(reg.counter("engine.drain_errors"), 3u);
    EXPECT_DOUBLE_EQ(reg.gauge("engine.last_drain_error_kind"), 1.0);
    EXPECT_EQ(reg.counter("engine.uring.rings"), 4u);
    EXPECT_EQ(reg.counter("engine.uring.sqes"), 128u);
    EXPECT_EQ(reg.counter("engine.uring.fixed_ops"), 100u);
    EXPECT_EQ(reg.counter("engine.uring.bounced_bytes"), 4096u);
    EXPECT_EQ(reg.histogram("engine.uring.ring_depth").count(), 1u);
    EXPECT_EQ(reg.histogram("engine.uring.completion_ns").count(), 1u);
    std::ostringstream out;
    reg.write_json(out);
    EXPECT_TRUE(json_valid(out.str()));
  }
}

TEST(JsonWriter, EscapesAndNesting) {
  std::ostringstream out;
  {
    obs::JsonWriter w(out, /*indent=*/0);
    w.begin_object();
    w.kv("quote\"back\\slash", std::string_view("tab\there\nnewline"));
    w.kv("num", 42);
    w.kv("neg", -1.5);
    w.kv("flag", true);
    w.key("arr");
    w.begin_array();
    w.value(std::uint64_t{18446744073709551615ull});  // u64 max survives
    w.end_array();
    w.end_object();
  }
  const std::string json = out.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("18446744073709551615"), std::string::npos);
}

TEST(JsonWriter, EscapesEveryControlCharacterAndDel) {
  // RFC 8259 outlaws raw control characters in strings; DEL must not pass
  // through raw either (it is invisible in a terminal and confuses naive
  // log pipelines even though the spec tolerates it).
  for (int c = 0; c < 0x20; ++c) {
    std::ostringstream out;
    obs::JsonWriter w(out, -1);
    w.value(std::string(1, static_cast<char>(c)));
    const std::string json = out.str();
    EXPECT_TRUE(json_valid(json)) << "control char " << c << ": " << json;
    EXPECT_EQ(json.find(static_cast<char>(c)), std::string::npos)
        << "raw control byte " << c << " leaked into " << json;
  }
  std::ostringstream out;
  obs::JsonWriter w(out, -1);
  w.value("x\x7fy");
  EXPECT_EQ(out.str(), "\"x\\u007fy\"");
}

TEST(JsonWriter, InvalidUtf8BecomesReplacementCharacter) {
  const struct {
    const char* label;
    std::string input;
  } cases[] = {
      {"stray continuation", "a\x80z"},
      {"truncated 2-byte", "a\xC3"},
      {"truncated 3-byte", "a\xE2\x82"},
      {"overlong slash", "a\xC0\xAFz"},
      {"surrogate half", "a\xED\xA0\x80z"},
      {"beyond U+10FFFF", "a\xF4\x90\x80\x80z"},
      {"fe-ff bytes", "a\xFE\xFFz"},
  };
  for (const auto& c : cases) {
    std::ostringstream out;
    obs::JsonWriter w(out, -1);
    w.value(c.input);
    EXPECT_TRUE(json_valid(out.str()))
        << c.label << " emitted unparseable JSON: " << out.str();
    EXPECT_NE(out.str().find("\xEF\xBF\xBD"), std::string::npos) << c.label;
  }
  // Well-formed multibyte text passes through byte-identical.
  std::ostringstream out;
  obs::JsonWriter w(out, -1);
  w.value("caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x9A\x80");
  EXPECT_EQ(out.str(), "\"caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x9A\x80\"");
}

TEST(JsonWriter, FuzzedByteStringsAlwaysParse) {
  // Random byte soup as both key and value — whatever label a caller
  // concocts, the document must stay parseable by a strict JSON parser.
  util::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string s;
    const std::size_t n = rng.below(24);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.below(5)) {
        case 0:  // arbitrary byte, including invalid UTF-8 leads
          s += static_cast<char>(rng.below(256));
          break;
        case 1:  // control characters
          s += static_cast<char>(rng.below(0x20));
          break;
        case 2:  // bytes that need escaping
          s += (rng.below(2) != 0) ? '"' : '\\';
          break;
        case 3:  // a valid multibyte sequence, sometimes truncated
          s += (rng.below(3) != 0) ? "\xE2\x82\xAC" : "\xE2\x82";
          break;
        default:  // plain ASCII
          s += static_cast<char>('a' + rng.below(26));
      }
    }
    std::ostringstream out;
    obs::JsonWriter w(out, -1);
    w.begin_object();
    w.key(s);
    w.value(s);
    w.end_object();
    ASSERT_TRUE(w.balanced());
    ASSERT_TRUE(json_valid(out.str()))
        << "trial " << trial << " produced unparseable JSON: " << out.str();
  }
}

// --- TraceWriter ------------------------------------------------------------

TEST(TraceWriter, EventsRenderAsChromeTraceJson) {
  obs::TraceWriter tw;
  const auto t0 = obs::TraceWriter::now_ns();
  tw.duration("fetch_ctx", "phase", 0, t0, 2'000);
  tw.duration("compute", "phase", 3, t0 + 2'000, 5'000);
  tw.instant("rollback.superstep", "recovery", 1, t0 + 4'000);
  EXPECT_EQ(tw.size(), 3u);
  std::ostringstream out;
  tw.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(json_valid(json)) << json;
  // The trace sink writes compact JSON (no spaces after colons).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
}

// --- PhaseSpan --------------------------------------------------------------

TEST(PhaseSpan, NullRecorderIsFree) {
  obs::PhaseSpan span(nullptr, "compute");
  span.add_cost({1, 2, 3, 4, 5});
  // Destruction must not touch anything; nothing to assert beyond "no
  // crash" — the real guarantee (no clock reads / no locking) is by code
  // inspection of the rec_ == nullptr early-outs.
}

TEST(PhaseSpan, RecordsWallClockAndCost) {
  obs::Recorder rec;
  rec.trace_enabled = true;
  {
    obs::PhaseSpan span(&rec, "fetch_msg", /*tid=*/2);
    span.add_cost({3, 5, 0, 640, 0});
    span.add_cost({1, 0, 2, 0, 256});
  }
  auto& reg = rec.registry;
  EXPECT_EQ(reg.counter("phase.fetch_msg.calls"), 1u);
  EXPECT_EQ(reg.counter("phase.fetch_msg.parallel_ios"), 4u);
  EXPECT_EQ(reg.counter("phase.fetch_msg.blocks_read"), 5u);
  EXPECT_EQ(reg.counter("phase.fetch_msg.blocks_written"), 2u);
  EXPECT_EQ(reg.counter("phase.fetch_msg.bytes_read"), 640u);
  EXPECT_EQ(reg.counter("phase.fetch_msg.bytes_written"), 256u);
  EXPECT_EQ(reg.histogram("phase.fetch_msg.wall_ns").count(), 1u);
  EXPECT_EQ(rec.trace.size(), 1u);
}

// --- End-to-end: metrics do not perturb simulation results ------------------

sim::SimConfig obs_config(em::IoEngine engine = em::IoEngine::serial) {
  sim::SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = 16;
  cfg.machine.em.D = 4;
  cfg.machine.em.B = 128;
  cfg.machine.em.M = 1 << 16;
  cfg.mu = 64;
  cfg.gamma = 600;
  cfg.io_engine = engine;
  cfg.seed = 0x5EEDULL;
  return cfg;
}

/// Runs PrefixSum on the sequential simulator and returns (serialized final
/// states, result).
std::pair<std::vector<std::vector<std::byte>>, sim::SimResult> run_prefix(
    sim::SimConfig cfg) {
  using embsp::testing::PrefixSumProgram;
  std::vector<std::vector<std::byte>> states(cfg.machine.bsp.v);
  sim::SeqSimulator simr(cfg);
  auto result = simr.run<PrefixSumProgram>(
      PrefixSumProgram{},
      [](std::uint32_t pid) {
        PrefixSumProgram::State s;
        s.value = pid * 3 + 1;
        return s;
      },
      [&](std::uint32_t pid, PrefixSumProgram::State& s) {
        util::Writer w;
        s.serialize(w);
        states[pid] = w.take();
      });
  return {std::move(states), std::move(result)};
}

void expect_same_io(const em::IoStats& a, const em::IoStats& b) {
  EXPECT_EQ(a.parallel_ios, b.parallel_ios);
  EXPECT_EQ(a.blocks_read, b.blocks_read);
  EXPECT_EQ(a.blocks_written, b.blocks_written);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
}

TEST(ObsEndToEnd, RecorderDoesNotChangeResults) {
  auto [plain_states, plain] = run_prefix(obs_config());

  obs::Recorder rec;
  rec.trace_enabled = true;
  auto cfg = obs_config();
  cfg.recorder = &rec;
  auto [obs_states, observed] = run_prefix(cfg);

  EXPECT_EQ(plain_states, obs_states);
  EXPECT_EQ(plain.lambda(), observed.lambda());
  expect_same_io(plain.total_io, observed.total_io);
  EXPECT_EQ(plain.group_size, observed.group_size);
  EXPECT_EQ(plain.max_tracks_per_disk, observed.max_tracks_per_disk);

  // The run populated phase spans, engine metrics and simulator gauges.
  auto& reg = rec.registry;
  for (const char* phase : {"init", "fetch_ctx", "fetch_msg", "compute",
                            "write_msg", "write_ctx", "reorganize",
                            "collect"}) {
    EXPECT_GT(reg.counter(std::string("phase.") + phase + ".calls"), 0u)
        << phase;
    EXPECT_FALSE(
        reg.histogram(std::string("phase.") + phase + ".wall_ns").empty())
        << phase;
  }
  // Phase model-cost counters must reproduce the PhaseIo breakdown exactly.
  EXPECT_EQ(reg.counter("phase.fetch_ctx.parallel_ios"),
            observed.phase_io.fetch_ctx.parallel_ios);
  EXPECT_EQ(reg.counter("phase.reorganize.parallel_ios"),
            observed.phase_io.reorganize.parallel_ios);
  EXPECT_GT(reg.counter("engine.disk.0.ops"), 0u);
  EXPECT_FALSE(reg.histogram("engine.disk.0.service_ns").empty());
  EXPECT_FALSE(reg.histogram("engine.queue_depth").empty());
  EXPECT_EQ(reg.counter("sim.supersteps"), observed.lambda());
  EXPECT_EQ(reg.counter("routing.blocks_total"),
            observed.routing_stats.blocks_total);
  EXPECT_FALSE(rec.trace.empty());

  // And the snapshot serializes to the golden schema.
  std::ostringstream out;
  reg.write_json(out);
  expect_golden_snapshot(out.str());
}

TEST(ObsEndToEnd, SerialAndParallelEnginesByteIdenticalWithMetrics) {
  obs::Recorder rec_s, rec_p;
  auto cfg_s = obs_config(em::IoEngine::serial);
  cfg_s.recorder = &rec_s;
  auto cfg_p = obs_config(em::IoEngine::parallel);
  cfg_p.recorder = &rec_p;

  auto [states_s, res_s] = run_prefix(cfg_s);
  auto [states_p, res_p] = run_prefix(cfg_p);

  // Byte-identical final states and identical model accounting: the engine
  // choice affects wall-clock only, never results or model cost — with
  // metrics enabled on both sides.
  EXPECT_EQ(states_s, states_p);
  EXPECT_EQ(res_s.lambda(), res_p.lambda());
  expect_same_io(res_s.total_io, res_p.total_io);
  expect_same_io(res_s.phase_io.reorganize, res_p.phase_io.reorganize);
  EXPECT_EQ(res_s.routing_stats.blocks_total,
            res_p.routing_stats.blocks_total);
  EXPECT_EQ(res_s.max_tracks_per_disk, res_p.max_tracks_per_disk);

  // Model-cost metrics agree across engines; wall-clock histograms differ,
  // which is exactly why they are separate metrics.
  EXPECT_EQ(rec_s.registry.counter("phase.reorganize.parallel_ios"),
            rec_p.registry.counter("phase.reorganize.parallel_ios"));
  EXPECT_EQ(rec_s.registry.counter("engine.disk.0.ops"),
            rec_p.registry.counter("engine.disk.0.ops"));
}

}  // namespace
}  // namespace embsp
