// Uni- and multi-directional separability (Table 1, Group B).
#include <gtest/gtest.h>

#include <cmath>

#include "cgm/geometry_separability.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {
namespace {

std::vector<util::Point2D> square(double cx, double cy, double half) {
  return {{cx - half, cy - half},
          {cx + half, cy - half},
          {cx + half, cy + half},
          {cx - half, cy + half}};
}

TEST(Separability, DisjointHullsDetected) {
  auto a = square(0, 0, 1);
  auto b = square(5, 0, 1);
  EXPECT_TRUE(convex_hulls_disjoint(a, b));
  auto c = square(1.5, 0, 1);  // overlaps a
  EXPECT_FALSE(convex_hulls_disjoint(a, c));
}

TEST(Separability, ContainmentIsIntersection) {
  auto outer = square(0, 0, 5);
  auto inner = square(0, 0, 1);
  EXPECT_FALSE(convex_hulls_disjoint(outer, inner));
  EXPECT_FALSE(convex_hulls_disjoint(inner, outer));
}

TEST(Separability, DegenerateHulls) {
  std::vector<util::Point2D> pt{{0, 0}};
  std::vector<util::Point2D> pt2{{1, 1}};
  EXPECT_TRUE(convex_hulls_disjoint(pt, pt2));
  EXPECT_FALSE(convex_hulls_disjoint(pt, pt));
  std::vector<util::Point2D> seg{{-1, 0}, {1, 0}};
  EXPECT_FALSE(convex_hulls_disjoint(seg, pt));  // point on segment
  auto sq = square(0, 0, 2);
  EXPECT_FALSE(convex_hulls_disjoint(seg, sq));  // segment inside square
}

TEST(Separability, MinkowskiDifferenceHull) {
  auto a = square(0, 0, 1);
  auto b = square(10, 0, 1);
  auto diff = minkowski_difference_hull(a, b);
  // B - A is a square of half-width 2 centered at (10, 0).
  ASSERT_EQ(diff.size(), 4u);
  double min_x = 1e18, max_x = -1e18;
  for (const auto& p : diff) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
  }
  EXPECT_DOUBLE_EQ(min_x, 8.0);
  EXPECT_DOUBLE_EQ(max_x, 12.0);
}

TEST(Separability, RayPolygonIntersection) {
  auto sq = square(5, 0, 1);
  EXPECT_TRUE(polygon_intersects_ray(sq, 1, 0));    // ray +x hits it
  EXPECT_FALSE(polygon_intersects_ray(sq, -1, 0));  // ray -x misses
  EXPECT_FALSE(polygon_intersects_ray(sq, 0, 1));   // ray +y misses
  auto around_origin = square(0, 0, 1);
  EXPECT_TRUE(polygon_intersects_ray(around_origin, 0.3, 0.7));
}

TEST(Separability, DirectionalSemantics) {
  // B sits to the right of A: A escapes left, up, down — not right.
  auto a = square(0, 0, 1);
  auto b = square(5, 0, 1);
  EXPECT_TRUE(direction_separable(a, b, -1, 0));
  EXPECT_TRUE(direction_separable(a, b, 0, 1));
  EXPECT_TRUE(direction_separable(a, b, 0, -1));
  EXPECT_FALSE(direction_separable(a, b, 1, 0));
  // Slightly angled escape that still clears B's corner.
  EXPECT_TRUE(direction_separable(a, b, 1, 2));
  // Intersecting objects are never d-separable under our definition.
  auto c = square(1, 0, 1);
  EXPECT_FALSE(direction_separable(a, c, -1, 0));
}

TEST(Separability, FullPipelineSeparatedClusters) {
  util::Rng rng(55);
  std::vector<util::Point2D> a, b;
  for (int i = 0; i < 400; ++i) {
    a.push_back({rng.uniform01() * 0.3, rng.uniform01()});
    b.push_back({0.6 + rng.uniform01() * 0.3, rng.uniform01()});
  }
  std::vector<util::Point2D> dirs{{-1, 0}, {1, 0}, {0, 1}};
  DirectExec exec;
  auto out = cgm_separability(exec, a, b, dirs, 8);
  EXPECT_TRUE(out.linearly_separable);
  EXPECT_EQ(out.dir_separable[0], 1);  // escape left
  EXPECT_EQ(out.dir_separable[1], 0);  // right runs into B
  EXPECT_EQ(out.dir_separable[2], 1);  // vertical slide is free
  EXPECT_TRUE(out.multi_separable);
}

TEST(Separability, FullPipelineOverlappingClusters) {
  auto a = util::random_points_2d(300, 56);
  auto b = util::random_points_2d(300, 57);  // same unit square: overlap
  std::vector<util::Point2D> dirs{{1, 0}, {0, 1}, {-1, -1}};
  DirectExec exec;
  auto out = cgm_separability(exec, a, b, dirs, 8);
  EXPECT_FALSE(out.linearly_separable);
  EXPECT_FALSE(out.multi_separable);
}

TEST(Separability, OnEmMachine) {
  util::Rng rng(58);
  std::vector<util::Point2D> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back({rng.uniform01(), rng.uniform01() * 0.3});
    b.push_back({rng.uniform01(), 0.7 + rng.uniform01() * 0.3});
  }
  std::vector<util::Point2D> dirs{{0, -1}, {0, 1}};
  sim::SimConfig cfg;
  cfg.machine.p = 2;
  cfg.machine.em = {1 << 22, 2, 256, 1.0};
  ParEmExec exec(cfg);
  auto out = cgm_separability(exec, a, b, dirs, 8);
  EXPECT_TRUE(out.linearly_separable);
  EXPECT_EQ(out.dir_separable[0], 1);
  EXPECT_EQ(out.dir_separable[1], 0);
}

TEST(Separability, AgreesWithSampledSimulation) {
  // Independent check: slide A along d in small steps and test hull
  // disjointness at every step — must agree with direction_separable.
  util::Rng rng(59);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<util::Point2D> a, b;
    for (int i = 0; i < 20; ++i) {
      a.push_back({rng.uniform01() * 0.4, rng.uniform01() * 0.4});
      b.push_back({0.5 + rng.uniform01() * 0.4,
                   0.5 + rng.uniform01() * 0.4});
    }
    DirectExec exec;
    auto ha = cgm_convex_hull(exec, a, 4).hull;
    auto hb = cgm_convex_hull(exec, b, 4).hull;
    const double ang = rng.uniform01() * 6.283185307;
    const double dx = std::cos(ang), dy = std::sin(ang);
    const bool got = direction_separable(ha, hb, dx, dy);
    bool collided = false;
    for (int s = 0; s <= 400 && !collided; ++s) {
      const double t = s * 0.01;
      std::vector<util::Point2D> moved = ha;
      for (auto& p : moved) {
        p.x += t * dx;
        p.y += t * dy;
      }
      collided = !convex_hulls_disjoint(moved, hb);
    }
    // Sampling can only prove non-separability; when it finds a collision
    // the exact test must agree.  (The converse can differ only by grazing
    // contacts between samples, which these fat random hulls do not
    // produce.)
    EXPECT_EQ(got, !collided) << "trial " << trial;
  }
}

}  // namespace
}  // namespace embsp::cgm
