#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"
#include "util/serialization.hpp"
#include "util/table.hpp"
#include "util/workloads.hpp"

namespace embsp::util {
namespace {

TEST(Serialization, RoundTripPrimitives) {
  Writer w;
  w.write<std::uint32_t>(42);
  w.write<double>(3.25);
  w.write<std::int8_t>(-7);
  Reader r(w.bytes());
  EXPECT_EQ(r.read<std::uint32_t>(), 42u);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::int8_t>(), -7);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, RoundTripVectorAndString) {
  Writer w;
  w.write_vector(std::vector<std::uint64_t>{1, 2, 3});
  w.write_string("hello");
  w.write_vector(std::vector<std::uint16_t>{});
  Reader r(w.bytes());
  EXPECT_EQ(r.read_vector<std::uint64_t>(),
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_TRUE(r.read_vector<std::uint16_t>().empty());
}

TEST(Serialization, TruncatedBufferThrows) {
  Writer w;
  w.write<std::uint16_t>(5);
  Reader r(w.bytes());
  EXPECT_THROW(r.read<std::uint64_t>(), std::out_of_range);
}

TEST(Serialization, ReadBytesAdvances) {
  Writer w;
  w.write<std::uint32_t>(0xdeadbeef);
  w.write<std::uint32_t>(0x12345678);
  Reader r(w.bytes());
  auto first = r.read_bytes(4);
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(r.read<std::uint32_t>(), 0x12345678u);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(5);
  std::vector<std::uint32_t> perm;
  rng.permutation(20, perm);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(Rng, ForkIndependent) {
  Rng parent(3);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Table, RendersAligned) {
  Table t({"name", "count"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const auto s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Count) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(4096), "4.0 KiB");
  EXPECT_EQ(fmt_bytes(5ull << 20), "5.0 MiB");
}

TEST(Workloads, RandomPermutationValid) {
  auto perm = random_permutation(100, 42);
  std::set<std::uint64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Workloads, RandomListReachesAllNodes) {
  auto [succ, head] = random_list(50, 7);
  std::set<std::uint64_t> visited;
  std::uint64_t cur = head;
  while (visited.insert(cur).second) cur = succ[cur];
  EXPECT_EQ(visited.size(), 50u);
  EXPECT_EQ(succ[cur], cur);  // tail self-loop
}

TEST(Workloads, RandomTreeHasSingleRoot) {
  auto parent = random_tree(64, 9);
  int roots = 0;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] == i) ++roots;
  }
  EXPECT_EQ(roots, 1);
  // Every node reaches the root.
  for (std::size_t i = 0; i < parent.size(); ++i) {
    std::uint64_t cur = i;
    for (int hops = 0; hops < 70; ++hops) {
      if (parent[cur] == cur) break;
      cur = parent[cur];
    }
    EXPECT_EQ(parent[cur], cur);
  }
}

TEST(Workloads, DisjointSegmentsDoNotIntersect) {
  auto segs = random_disjoint_segments(40, 13);
  auto cross = [](const Segment2D& a, const Segment2D& b) {
    auto orient = [](double ax, double ay, double bx, double by, double cx,
                     double cy) {
      return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
    };
    const double d1 = orient(a.x1, a.y1, a.x2, a.y2, b.x1, b.y1);
    const double d2 = orient(a.x1, a.y1, a.x2, a.y2, b.x2, b.y2);
    const double d3 = orient(b.x1, b.y1, b.x2, b.y2, a.x1, a.y1);
    const double d4 = orient(b.x1, b.y1, b.x2, b.y2, a.x2, a.y2);
    return d1 * d2 < 0 && d3 * d4 < 0;
  };
  for (std::size_t i = 0; i < segs.size(); ++i) {
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      EXPECT_FALSE(cross(segs[i], segs[j])) << "segments " << i << "," << j;
    }
  }
}

TEST(Workloads, ComponentsGraphStructure) {
  auto [edges, comp] = random_components_graph(200, 7, 50, 21);
  // Every edge connects vertices of the same component.
  for (const auto& e : edges) {
    EXPECT_EQ(comp[e.u], comp[e.v]);
  }
  std::set<std::uint64_t> ids(comp.begin(), comp.end());
  EXPECT_EQ(ids.size(), 7u);
}

TEST(Workloads, RandomGraphNoDuplicatesNoSelfLoops) {
  auto edges = random_graph(30, 100, 3);
  EXPECT_EQ(edges.size(), 100u);
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (const auto& e : edges) {
    EXPECT_NE(e.u, e.v);
    auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

}  // namespace
}  // namespace embsp::util
