// Fault-tolerance tests: deterministic fault injection, retry/backoff,
// block checksums, the backend robustness fixes, and superstep-granular
// recovery in the sequential simulator.
//
// Carries both the `sanitize` and `faults` ctest labels: the retry loops
// run on the parallel engine's workers and the fault counters are shared
// atomics, so the suite is worth re-running under TSan/ASan.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "em/fault_backend.hpp"
#include "em/parallel_disk_array.hpp"
#include "sim/par_simulator.hpp"
#include "sim/seq_simulator.hpp"
#include "test_programs.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace embsp::em {
namespace {

namespace fs = std::filesystem;
using embsp::testing::IrregularProgram;

std::vector<std::byte> pattern_block(std::size_t size, std::uint64_t tag) {
  std::vector<std::byte> b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::byte>(
        static_cast<std::uint8_t>(tag * 131 + i * 7 + 3));
  }
  return b;
}

// --- Checksums --------------------------------------------------------------

TEST(Checksum, StableAndSensitive) {
  const auto a = pattern_block(512, 1);
  const auto b = pattern_block(512, 1);
  EXPECT_EQ(util::checksum64(a), util::checksum64(b));

  auto c = a;
  c[300] ^= std::byte{1};  // single bit flip
  EXPECT_NE(util::checksum64(a), util::checksum64(c));

  // Length matters even when content is all zeros.
  const std::vector<std::byte> z1(64), z2(65);
  EXPECT_NE(util::checksum64(z1), util::checksum64(z2));
}

TEST(Checksum, DiskDetectsMediumCorruption) {
  auto backend = std::make_unique<MemoryBackend>();
  auto* raw = backend.get();
  Disk disk(128, std::move(backend), 0, /*verify_checksums=*/true);
  const auto block = pattern_block(128, 9);
  disk.write_track(3, block);

  std::vector<std::byte> out(128);
  disk.read_track(3, out);
  EXPECT_EQ(out, block);
  EXPECT_EQ(disk.checksum_failures(), 0u);

  // Corrupt the medium behind the disk's back: every re-read now fails
  // verification (this is genuine rot, not an in-flight flip).
  std::byte evil{0x40};
  raw->write(3 * 128 + 17, {&evil, 1});
  EXPECT_THROW(disk.read_track(3, out), CorruptBlockError);
  EXPECT_GE(disk.checksum_failures(), 1u);
}

// --- Error taxonomy / retry policy ------------------------------------------

TEST(IoErrorTaxonomy, KindsAndRetryability) {
  EXPECT_TRUE(TransientIoError("x").retryable());
  EXPECT_TRUE(CorruptBlockError("x").retryable());
  EXPECT_FALSE(PersistentIoError("x").retryable());
  EXPECT_EQ(classify_errno(EIO), IoError::Kind::transient);
  EXPECT_EQ(classify_errno(EBADF), IoError::Kind::persistent);
  // IoError stays catchable as runtime_error (pre-existing call sites).
  try {
    throw TransientIoError("hiccup");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "hiccup");
  }
}

TEST(RetryPolicy, BackoffGrowsAndIsBounded) {
  RetryPolicy p;
  p.base_backoff_ns = 1000;
  p.multiplier = 2.0;
  p.max_backoff_ns = 6000;
  util::Rng jitter(7);
  for (std::uint32_t attempt = 1; attempt <= 10; ++attempt) {
    const std::uint64_t raw =
        std::min<std::uint64_t>(1000ULL << (attempt - 1), 6000);
    const std::uint64_t got = p.backoff_ns(attempt, jitter);
    // Jitter multiplies by U ~ [0.5, 1.5).
    EXPECT_GE(got, raw / 2) << attempt;
    EXPECT_LT(got, raw + raw / 2 + 1) << attempt;
  }
}

// --- Deterministic injection ------------------------------------------------

FaultSpec noisy_spec() {
  FaultSpec s;
  s.seed = 42;
  s.read_error_rate = 0.2;
  s.write_error_rate = 0.2;
  s.torn_write_rate = 0.1;
  s.bit_flip_rate = 0.1;
  return s;
}

// Record, for a fixed call sequence, which calls fault and how.
std::vector<int> fault_trace(std::uint32_t disk_index, std::uint64_t seed) {
  FaultInjectingBackend b(std::make_unique<MemoryBackend>(), noisy_spec(),
                          seed, disk_index);
  const auto block = pattern_block(64, 5);
  std::vector<std::byte> buf(64);
  std::vector<int> trace;
  for (int i = 0; i < 200; ++i) {
    try {
      if (i % 2 == 0) {
        b.write(static_cast<std::uint64_t>(i) * 64, block);
      } else {
        b.read(static_cast<std::uint64_t>(i - 1) * 64, buf);
      }
      trace.push_back(0);
    } catch (const IoError&) {
      trace.push_back(1);
    }
  }
  return trace;
}

TEST(FaultInjection, ScheduleIsDeterministicPerSeedAndDisk) {
  const auto t1 = fault_trace(0, 1);
  const auto t2 = fault_trace(0, 1);
  EXPECT_EQ(t1, t2);  // same seed, same disk -> identical schedule
  EXPECT_NE(t1, fault_trace(1, 1));  // another disk -> decorrelated stream
  EXPECT_NE(t1, fault_trace(0, 2));  // another seed -> different schedule
  // With these rates something must actually fire.
  EXPECT_GT(std::count(t1.begin(), t1.end(), 1), 0);
}

TEST(FaultInjection, TornWritesHealedByRetryLayer) {
  FaultSpec spec;
  spec.seed = 7;
  spec.torn_write_rate = 0.3;
  spec.write_error_rate = 0.1;
  auto counters = std::make_shared<FaultCounters>();
  DiskArrayOptions opts;
  opts.retry.max_attempts = 8;  // tears redraw per attempt; 0.3^8 ~ never
  DiskArray arr(2, 64, wrap_with_faults(nullptr, spec, 99, counters), 0,
                opts);
  // Every write is retried to completion, so every read-back must match
  // bit for bit even though many attempts only persisted a prefix.
  for (int iter = 0; iter < 100; ++iter) {
    const auto b0 = pattern_block(64, iter);
    const auto b1 = pattern_block(64, iter + 1000);
    std::vector<WriteOp> w{{0u, static_cast<std::uint64_t>(iter), b0},
                           {1u, static_cast<std::uint64_t>(iter), b1}};
    arr.parallel_write(w);
    std::vector<std::byte> r0(64), r1(64);
    std::vector<ReadOp> r{{0u, static_cast<std::uint64_t>(iter), r0},
                          {1u, static_cast<std::uint64_t>(iter), r1}};
    arr.parallel_read(r);
    ASSERT_EQ(r0, b0) << iter;
    ASSERT_EQ(r1, b1) << iter;
  }
  EXPECT_GT(counters->torn_writes.load(), 0u);
  EXPECT_GT(arr.engine_stats().total_retries(), 0u);
  EXPECT_EQ(arr.engine_stats().total_giveups(), 0u);
}

TEST(FaultInjection, BitFlipsHealedOnlyWithChecksums) {
  FaultSpec spec;
  spec.seed = 11;
  spec.bit_flip_rate = 0.4;
  auto counters = std::make_shared<FaultCounters>();
  DiskArrayOptions opts;
  opts.verify_checksums = true;
  opts.retry.max_attempts = 12;
  DiskArray arr(1, 128, wrap_with_faults(nullptr, spec, 5, counters), 0,
                opts);
  const auto block = pattern_block(128, 77);
  std::vector<WriteOp> w{{0u, 0u, block}};
  arr.parallel_write(w);
  // The flip mutates only the returned buffer; verification rejects the
  // read and the retry re-reads the intact medium.
  for (int i = 0; i < 50; ++i) {
    std::vector<std::byte> out(128);
    std::vector<ReadOp> r{{0u, 0u, out}};
    arr.parallel_read(r);
    ASSERT_EQ(out, block) << i;
  }
  EXPECT_GT(counters->bit_flips.load(), 0u);
  EXPECT_GT(arr.engine_stats().total_retries(), 0u);
  EXPECT_GT(arr.disk(0).checksum_failures(), 0u);
}

TEST(FaultInjection, DeadRangeFailsFastWithoutRetries) {
  FaultSpec spec;
  spec.seed = 1;
  spec.dead_ranges.push_back({0u, 0u, 10 * 64u});  // disk 0, first 10 tracks
  DiskArray arr(2, 64, wrap_with_faults(nullptr, spec, 1, nullptr));
  const auto block = pattern_block(64, 3);
  std::vector<WriteOp> bad{{0u, 2u, block}};
  EXPECT_THROW(arr.parallel_write(bad), PersistentIoError);
  // Persistent failures are not worth retrying: one attempt, one giveup.
  EXPECT_EQ(arr.engine_stats().total_retries(), 0u);
  EXPECT_EQ(arr.engine_stats().per_disk[0].giveups, 1u);
  // Beyond the dead range (and on the other disk) the array still works.
  std::vector<WriteOp> ok{{0u, 10u, block}, {1u, 0u, block}};
  arr.parallel_write(ok);
}

// --- Model accounting on failed operations ----------------------------------
// Regression: parallel_read/parallel_write used to charge bytes_read /
// bytes_written while *building* the transfer list, before execute() ran —
// an operation that then threw left the model stats claiming bytes for I/O
// that never completed (and recovery re-execution double-counted them).

TEST(IoAccounting, FailedParallelIoChargesNothing) {
  for (const auto engine :
       {IoEngine::serial, IoEngine::parallel, IoEngine::uring}) {
    FaultSpec spec;
    spec.seed = 1;
    spec.dead_ranges.push_back({0u, 0u, 10 * 64u});  // disk 0, tracks 0..9
    auto arr = make_disk_array(engine, 2, 64,
                               wrap_with_faults(nullptr, spec, 1, nullptr));
    const auto block = pattern_block(64, 3);

    std::vector<WriteOp> bad_w{{0u, 2u, block}};
    EXPECT_THROW(arr->parallel_write(bad_w), PersistentIoError);
    std::vector<std::byte> buf(64);
    std::vector<ReadOp> bad_r{{0u, 3u, buf}};
    EXPECT_THROW(arr->parallel_read(bad_r), PersistentIoError);

    // The model operations never completed: nothing may be charged.
    EXPECT_EQ(arr->stats().parallel_ios, 0u) << "engine " << int(engine);
    EXPECT_EQ(arr->stats().blocks_written, 0u);
    EXPECT_EQ(arr->stats().blocks_read, 0u);
    EXPECT_EQ(arr->stats().bytes_written, 0u);
    EXPECT_EQ(arr->stats().bytes_read, 0u);

    // A successful operation charges exactly once, all fields consistent.
    std::vector<WriteOp> ok{{0u, 20u, block}, {1u, 0u, block}};
    arr->parallel_write(ok);
    EXPECT_EQ(arr->stats().parallel_ios, 1u);
    EXPECT_EQ(arr->stats().blocks_written, 2u);
    EXPECT_EQ(arr->stats().bytes_written, 2 * 64u);
    EXPECT_EQ(arr->stats().bytes_written, arr->stats().blocks_written * 64u);
  }
}

TEST(FaultInjection, BurstShorterThanBudgetIsAbsorbed) {
  FaultSpec spec;
  spec.seed = 1;
  spec.bursts.push_back({0u, 2u, 3u});  // calls 2,3,4 on disk 0 fail
  DiskArrayOptions opts;
  opts.retry.max_attempts = 4;
  DiskArray arr(1, 64, wrap_with_faults(nullptr, spec, 1, nullptr), 0, opts);
  const auto block = pattern_block(64, 3);
  std::vector<WriteOp> w{{0u, 0u, block}};
  arr.parallel_write(w);  // calls 0
  arr.parallel_write(w);  // call 1
  arr.parallel_write(w);  // calls 2,3,4 fail; call 5 succeeds
  EXPECT_EQ(arr.engine_stats().total_retries(), 3u);
  EXPECT_EQ(arr.engine_stats().total_giveups(), 0u);
  // Execution histograms: one service-time sample per attempt (successful
  // or not), one retry-delay sample per backoff slept.
  const auto& ds = arr.engine_stats().per_disk[0];
  EXPECT_EQ(ds.service_ns.count(), 6u);  // 1 + 1 + 4 attempts
  EXPECT_EQ(ds.service_ns.sum(), ds.busy_ns);
  EXPECT_EQ(ds.retry_delay_ns.count(), 3u);
  EXPECT_EQ(arr.engine_stats().queue_depth.count(), 3u);
  EXPECT_EQ(arr.engine_stats().queue_depth.max(), 1u);
}

TEST(FaultInjection, BurstLongerThanBudgetGivesUp) {
  FaultSpec spec;
  spec.seed = 1;
  spec.bursts.push_back({0u, 1u, 6u});
  DiskArrayOptions opts;
  opts.retry.max_attempts = 4;
  DiskArray arr(1, 64, wrap_with_faults(nullptr, spec, 1, nullptr), 0, opts);
  const auto block = pattern_block(64, 3);
  std::vector<WriteOp> w{{0u, 0u, block}};
  arr.parallel_write(w);  // call 0 fine
  EXPECT_THROW(arr.parallel_write(w), TransientIoError);  // calls 1..4 fail
  EXPECT_EQ(arr.engine_stats().total_retries(), 3u);
  EXPECT_EQ(arr.engine_stats().total_giveups(), 1u);
  arr.parallel_write(w);  // calls 5,6 fail, 7 succeeds
  EXPECT_EQ(arr.engine_stats().total_giveups(), 1u);
}

// --- Backend robustness fixes -----------------------------------------------

TEST(MemoryBackendConcurrency, ConcurrentDisjointWritesDuringGrowth) {
  // Regression for the resize data race: writers extending the backend
  // concurrently with other writers/readers on disjoint ranges must never
  // invalidate each other's buffers.  Run under TSan (`sanitize` label).
  MemoryBackend b;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kChunk = 64 * 1024 + 13;  // straddles segments
  constexpr int kRounds = 20;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b, t] {
      const auto block = pattern_block(kChunk, t + 1);
      for (int r = 0; r < kRounds; ++r) {
        // Interleaved strides so growth constantly crosses segment
        // boundaries owned by different threads.
        const std::uint64_t off =
            (static_cast<std::uint64_t>(r) * kThreads + t) * kChunk;
        b.write(off, block);
        std::vector<std::byte> back(kChunk);
        b.read(off, back);
        if (back != block) {
          ADD_FAILURE() << "thread " << t << " round " << r
                        << ": readback mismatch";
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(b.size(), kThreads * kChunk * kRounds);
  // Never-written gaps read as zero.
  std::vector<std::byte> z(17);
  b.read(kThreads * kChunk * kRounds + 12345, z);
  for (auto v : z) EXPECT_EQ(v, std::byte{0});
}

TEST(FileBackend, KeepPreservesExistingFileAcrossReopen) {
  const auto path =
      (fs::temp_directory_path() / "embsp_keep_reopen.bin").string();
  fs::remove(path);
  const auto block = pattern_block(256, 8);
  {
    FileBackend b(path, /*keep=*/true);
    b.write(512, block);
    b.flush();
  }
  ASSERT_TRUE(fs::exists(path));
  {
    // Re-opening with keep must NOT truncate: the previous run's data is
    // exactly what the caller asked to preserve.
    FileBackend b(path, /*keep=*/true);
    EXPECT_EQ(b.size(), 512u + 256u);
    std::vector<std::byte> back(256);
    b.read(512, back);
    EXPECT_EQ(back, block);
  }
  fs::remove(path);
}

TEST(FileBackend, ScratchFilesStartFresh) {
  const auto path =
      (fs::temp_directory_path() / "embsp_scratch_fresh.bin").string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "stale garbage from an earlier crash";
  }
  {
    FileBackend b(path, /*keep=*/false);
    EXPECT_EQ(b.size(), 0u);  // truncated on open
    std::vector<std::byte> z(8);
    b.read(0, z);
    for (auto v : z) EXPECT_EQ(v, std::byte{0});
  }
  EXPECT_FALSE(fs::exists(path));  // scratch: unlinked on destruction
}

TEST(FileBackend, DoubleOpenOfLivePathThrows) {
  const auto path =
      (fs::temp_directory_path() / "embsp_double_open.bin").string();
  fs::remove(path);
  {
    FileBackend first(path, /*keep=*/true);
    // A second backend on the live path would clobber the first.
    EXPECT_THROW(FileBackend second(path, /*keep=*/true), PersistentIoError);
  }
  // Once the first holder is gone the path is free again.
  FileBackend again(path, /*keep=*/false);
  fs::remove(path);
}

// --- End-to-end: simulators under injected faults ---------------------------

sim::SimConfig fault_config(std::uint32_t p, std::uint32_t v,
                            em::IoEngine engine, double rate) {
  sim::SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.bsp.v = v;
  cfg.machine.em.D = 4;
  cfg.machine.em.B = 128;
  cfg.machine.em.M = 1 << 20;
  cfg.mu = 64;
  cfg.gamma = 4096;
  cfg.io_engine = engine;
  cfg.faults.seed = 2024;
  cfg.faults.read_error_rate = rate;
  cfg.faults.write_error_rate = rate;
  cfg.faults.torn_write_rate = rate / 2;
  cfg.faults.bit_flip_rate = rate / 2;
  cfg.block_checksums = true;  // needed: bit flips are silent without them
  return cfg;
}

std::vector<std::uint64_t> run_seq(const sim::SimConfig& cfg,
                                   sim::SimResult& result,
                                   const std::string& file_tag = {}) {
  sim::SeqSimulator simr(
      cfg, file_tag.empty()
               ? std::function<std::unique_ptr<Backend>(std::size_t)>{}
               : [&](std::size_t d) {
                   return make_file_backend(
                       (fs::temp_directory_path() /
                        ("embsp_faults_" + file_tag + "_" +
                         std::to_string(d) + ".bin"))
                           .string(),
                       /*keep=*/true);
                 });
  // Indexed by processor (not push_back): the collect unit may re-execute
  // after a rollback, and re-assignments must stay idempotent.
  std::vector<std::uint64_t> sums(cfg.machine.bsp.v);
  result = simr.run<IrregularProgram>(
      IrregularProgram{},
      [](std::uint32_t) { return IrregularProgram::State{}; },
      [&](std::uint32_t vp, IrregularProgram::State& s) {
        sums[vp] = s.checksum;
      });
  return sums;
}

TEST(FaultySimSeq, FaultyRunMatchesFaultFreeByteForByte) {
  // The acceptance test of the substrate: a moderately hostile fault rate
  // must change *nothing* observable except the resilience counters —
  // same collected states, same model I/O cost, byte-identical disk
  // images.  Superstep recovery is on in BOTH runs so layouts match.
  auto scrub = [&](const std::string& tag) {
    for (std::size_t d = 0; d < 4; ++d) {
      fs::remove(fs::temp_directory_path() /
                 ("embsp_faults_" + tag + "_" + std::to_string(d) + ".bin"));
    }
  };
  scrub("clean");
  scrub("noisy");

  auto clean_cfg = fault_config(1, 16, IoEngine::serial, 0.0);
  clean_cfg.faults = FaultSpec{};  // truly fault-free
  clean_cfg.superstep_recovery = true;
  sim::SimResult clean_res;
  const auto clean = run_seq(clean_cfg, clean_res, "clean");
  EXPECT_EQ(clean_res.recovery.io_retries, 0u);
  EXPECT_EQ(clean_res.recovery.faults.total(), 0u);

  auto noisy_cfg = fault_config(1, 16, IoEngine::serial, 0.01);
  noisy_cfg.superstep_recovery = true;
  sim::SimResult noisy_res;
  const auto noisy = run_seq(noisy_cfg, noisy_res, "noisy");

  EXPECT_EQ(clean, noisy);
  EXPECT_GT(noisy_res.recovery.faults.total(), 0u);
  EXPECT_GT(noisy_res.recovery.io_retries, 0u);
  // Every transient was absorbed below the model layer: parallel I/O
  // counts (the quantity the paper's theorems bound) are unchanged.
  EXPECT_EQ(clean_res.total_io.parallel_ios, noisy_res.total_io.parallel_ios);
  EXPECT_EQ(clean_res.total_io.blocks_written,
            noisy_res.total_io.blocks_written);

  for (std::size_t d = 0; d < 4; ++d) {
    const auto a = fs::temp_directory_path() /
                   ("embsp_faults_clean_" + std::to_string(d) + ".bin");
    const auto b = fs::temp_directory_path() /
                   ("embsp_faults_noisy_" + std::to_string(d) + ".bin");
    ASSERT_TRUE(fs::exists(a));
    ASSERT_TRUE(fs::exists(b));
    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    std::vector<char> ca((std::istreambuf_iterator<char>(fa)),
                         std::istreambuf_iterator<char>());
    std::vector<char> cb((std::istreambuf_iterator<char>(fb)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(ca, cb) << "disk image " << d
                      << " differs between fault-free and faulty run";
  }
  scrub("clean");
  scrub("noisy");
}

TEST(FaultySimSeq, SameSeedSameFaultHistory) {
  // Run-to-run determinism of the whole resilient stack: identical config
  // => identical collected states AND identical fault/retry tallies.
  const auto cfg = fault_config(1, 16, IoEngine::serial, 0.02);
  sim::SimResult r1, r2;
  const auto s1 = run_seq(cfg, r1);
  const auto s2 = run_seq(cfg, r2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(r1.recovery.io_retries, r2.recovery.io_retries);
  EXPECT_EQ(r1.recovery.faults.read_errors, r2.recovery.faults.read_errors);
  EXPECT_EQ(r1.recovery.faults.write_errors, r2.recovery.faults.write_errors);
  EXPECT_EQ(r1.recovery.faults.torn_writes, r2.recovery.faults.torn_writes);
  EXPECT_EQ(r1.recovery.faults.bit_flips, r2.recovery.faults.bit_flips);
  EXPECT_EQ(r1.total_io.parallel_ios, r2.total_io.parallel_ios);
}

TEST(FaultySimSeq, ParallelEngineSeesSameFaultSchedule) {
  // The schedule is a pure function of each disk's call sequence, and both
  // engines issue per-disk transfers in the same order — so switching the
  // engine changes nothing, faults included.
  const auto serial_cfg = fault_config(1, 16, IoEngine::serial, 0.02);
  auto parallel_cfg = serial_cfg;
  parallel_cfg.io_engine = IoEngine::parallel;
  sim::SimResult rs, rp;
  const auto ss = run_seq(serial_cfg, rs);
  const auto sp = run_seq(parallel_cfg, rp);
  EXPECT_EQ(ss, sp);
  EXPECT_EQ(rs.recovery.faults.read_errors, rp.recovery.faults.read_errors);
  EXPECT_EQ(rs.recovery.faults.write_errors, rp.recovery.faults.write_errors);
  EXPECT_EQ(rs.recovery.io_retries, rp.recovery.io_retries);
  EXPECT_EQ(rs.total_io.parallel_ios, rp.total_io.parallel_ios);
}

TEST(FaultySimSeq, UringEngineSeesSameFaultSchedule) {
  // The kernel-native engine keeps the per-drive worker FIFO, and the fault
  // decorator sits *above* the ring — so the deterministic schedule fires
  // on the same per-disk call indices and every recovery tally matches the
  // serial engine's.  (Where io_uring is unavailable the uring scratch
  // factory silently substitutes file backends; the parity claim is
  // unchanged.)  Exercised both blocking and pipelined.
  const auto serial_cfg = fault_config(1, 16, IoEngine::serial, 0.02);
  auto uring_cfg = serial_cfg;
  uring_cfg.io_engine = IoEngine::uring;
  auto uring_piped_cfg = uring_cfg;
  uring_piped_cfg.pipeline = true;
  uring_piped_cfg.compute_threads = 2;
  sim::SimResult rs, ru, rup;
  const auto ss = run_seq(serial_cfg, rs);
  const auto su = run_seq(uring_cfg, ru);
  const auto sup = run_seq(uring_piped_cfg, rup);
  EXPECT_EQ(ss, su);
  EXPECT_EQ(ss, sup);
  EXPECT_GT(ru.recovery.faults.total(), 0u);
  EXPECT_EQ(rs.recovery.faults.read_errors, ru.recovery.faults.read_errors);
  EXPECT_EQ(rs.recovery.faults.write_errors, ru.recovery.faults.write_errors);
  EXPECT_EQ(rs.recovery.io_retries, ru.recovery.io_retries);
  EXPECT_EQ(rs.total_io.parallel_ios, ru.total_io.parallel_ios);
  // Pipelining may re-attribute a fault between op kinds (see below) but
  // not move it to a different call index.
  EXPECT_EQ(rs.recovery.faults.read_errors + rs.recovery.faults.write_errors,
            rup.recovery.faults.read_errors + rup.recovery.faults.write_errors);
  EXPECT_EQ(rs.recovery.io_retries, rup.recovery.io_retries);
  EXPECT_EQ(rs.total_io.parallel_ios, rup.total_io.parallel_ios);
}

TEST(FaultySimSeq, PipelinedScheduleSeesSameFaultSchedule) {
  // The injector draws a fixed number of values per backend call, so the
  // schedule is a pure function of each disk's call index.  Pipelining
  // front-runs group g+1's prefetch reads past group g's writes, which can
  // turn call N from a write into a read — a fault re-attributes between
  // kinds (the rates are kind-symmetric here) — but the faulting call
  // indices, the retry each one provokes, the model I/O counts and the
  // recovered results are identical to the serial schedule's.
  const auto serial_cfg = fault_config(1, 16, IoEngine::serial, 0.02);
  auto piped_cfg = serial_cfg;
  piped_cfg.io_engine = IoEngine::parallel;
  piped_cfg.pipeline = true;
  piped_cfg.compute_threads = 2;
  sim::SimResult rs, rp;
  const auto ss = run_seq(serial_cfg, rs);
  const auto sp = run_seq(piped_cfg, rp);
  EXPECT_EQ(ss, sp);
  EXPECT_GT(rp.recovery.faults.total(), 0u);
  EXPECT_EQ(rs.recovery.faults.read_errors + rs.recovery.faults.write_errors,
            rp.recovery.faults.read_errors + rp.recovery.faults.write_errors);
  EXPECT_EQ(rs.recovery.faults.torn_writes + rs.recovery.faults.bit_flips,
            rp.recovery.faults.torn_writes + rp.recovery.faults.bit_flips);
  EXPECT_EQ(rs.recovery.io_retries, rp.recovery.io_retries);
  EXPECT_EQ(rs.total_io.parallel_ios, rp.total_io.parallel_ios);
}

TEST(FaultySimSeq, BurstForcesSuperstepRollbackAndRecovers) {
  // Script a burst long enough to exhaust the retry budget mid-run: the
  // simulator must give up on the transfer, roll back to the enclosing
  // recovery unit, re-execute, and still produce the fault-free answer.
  auto base = fault_config(1, 16, IoEngine::serial, 0.0);
  base.faults = FaultSpec{};
  sim::SimResult clean_res;
  const auto clean = run_seq(base, clean_res);
  const std::uint64_t disk0_calls =
      clean_res.total_io.blocks_read + clean_res.total_io.blocks_written;
  ASSERT_GT(disk0_calls, 40u);

  auto cfg = base;
  cfg.faults.seed = 5;
  cfg.faults.bursts.push_back(
      {0u, disk0_calls / 8, static_cast<std::uint64_t>(cfg.retry.max_attempts)});
  cfg.superstep_recovery = true;
  cfg.block_checksums = true;

  auto clean_rec = base;
  clean_rec.superstep_recovery = true;
  clean_rec.block_checksums = true;
  sim::SimResult clean_rec_res;
  const auto expected = run_seq(clean_rec, clean_rec_res);

  sim::SimResult res;
  const auto got = run_seq(cfg, res);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(res.recovery.io_giveups, 1u);
  EXPECT_EQ(res.recovery.total_rollbacks(), 1u);
  // Accounting bugfix regression: a rolled-back (thrown) parallel I/O must
  // charge nothing, so byte and block tallies stay exactly consistent even
  // across a giveup + re-execution (B = 128 in fault_config).
  EXPECT_EQ(res.total_io.bytes_written, res.total_io.blocks_written * 128u);
  EXPECT_EQ(res.total_io.bytes_read, res.total_io.blocks_read * 128u);
}

TEST(FaultySimSeq, UnrecoverableWithoutSuperstepRecovery) {
  // The same scripted burst without rollback support must surface as an
  // IoError to the caller — no silent corruption, no hang.
  auto cfg = fault_config(1, 16, IoEngine::serial, 0.0);
  cfg.faults = FaultSpec{};
  cfg.faults.seed = 5;
  cfg.faults.bursts.push_back(
      {0u, 20u, static_cast<std::uint64_t>(cfg.retry.max_attempts)});
  sim::SimResult res;
  EXPECT_THROW(run_seq(cfg, res), IoError);
}

TEST(FaultySimPar, FaultyRunMatchesFaultFree) {
  // Parallel simulator: retry-layer resilience across p threads x D
  // workers with a shared fault tally.
  auto clean_cfg = fault_config(2, 16, IoEngine::parallel, 0.0);
  clean_cfg.faults = FaultSpec{};
  auto noisy_cfg = fault_config(2, 16, IoEngine::parallel, 0.01);

  auto run_par = [](const sim::SimConfig& cfg, sim::SimResult& result) {
    sim::ParSimulator simr(cfg);
    std::vector<std::uint64_t> sums(cfg.machine.bsp.v);
    result = simr.run<IrregularProgram>(
        IrregularProgram{},
        [](std::uint32_t) { return IrregularProgram::State{}; },
        [&](std::uint32_t vp, IrregularProgram::State& s) {
          sums[vp] = s.checksum;
        });
    return sums;
  };
  sim::SimResult clean_res, noisy_res;
  const auto clean = run_par(clean_cfg, clean_res);
  const auto noisy = run_par(noisy_cfg, noisy_res);
  EXPECT_EQ(clean, noisy);
  EXPECT_GT(noisy_res.recovery.faults.total(), 0u);
  EXPECT_GT(noisy_res.recovery.io_retries, 0u);
  EXPECT_EQ(noisy_res.recovery.io_giveups, 0u);
  EXPECT_EQ(clean_res.total_io.parallel_ios, noisy_res.total_io.parallel_ios);
}

}  // namespace
}  // namespace embsp::em
