// Group C graph algorithms across executors, validated against sequential
// references.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "cgm/graph_components.hpp"
#include "cgm/graph_euler_tour.hpp"
#include "cgm/graph_lca.hpp"
#include "cgm/graph_list_ranking.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {
namespace {

sim::SimConfig em_config(std::uint32_t p, std::size_t D, std::size_t B) {
  sim::SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.em.D = D;
  cfg.machine.em.B = B;
  cfg.machine.em.M = 1 << 22;
  return cfg;
}

std::vector<std::uint64_t> reference_ranks(
    std::span<const std::uint64_t> succ, std::uint64_t head) {
  std::vector<std::uint64_t> want(succ.size());
  std::uint64_t cur = head;
  for (std::size_t d = 0; d < succ.size(); ++d) {
    want[cur] = succ.size() - 1 - d;
    cur = succ[cur];
  }
  return want;
}

// --- list ranking ------------------------------------------------------------

class ListRankingSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(ListRankingSweep, HopsToTailCorrect) {
  const auto [n, v] = GetParam();
  auto [succ, head] = util::random_list(n, 19 * n + v);
  DirectExec exec;
  auto out = cgm_list_ranking(exec, succ, v);
  EXPECT_EQ(out.rank1, reference_ranks(succ, head));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ListRankingSweep,
    ::testing::Values(std::pair<std::size_t, std::uint32_t>{1, 1},
                      std::pair<std::size_t, std::uint32_t>{2, 2},
                      std::pair<std::size_t, std::uint32_t>{50, 4},
                      std::pair<std::size_t, std::uint32_t>{500, 8},
                      std::pair<std::size_t, std::uint32_t>{2000, 16}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "v" +
             std::to_string(info.param.second);
    });

TEST(ListRanking, WeightedSuffixSums) {
  // succ: 0 -> 1 -> 2 (tail); w1 = 10, 20, 30.
  std::vector<std::uint64_t> succ{1, 2, 2};
  std::vector<std::uint64_t> w1{10, 20, 30};
  std::vector<std::uint64_t> w2{1, ~0ull /* -1 */, 5};
  DirectExec exec;
  auto out = cgm_list_ranking_weighted(exec, succ, w1, w2, 2);
  EXPECT_EQ(out.rank1, (std::vector<std::uint64_t>{60, 50, 30}));
  EXPECT_EQ(static_cast<std::int64_t>(out.rank2[0]), 5);   // 1 - 1 + 5
  EXPECT_EQ(static_cast<std::int64_t>(out.rank2[1]), 4);   // -1 + 5
  EXPECT_EQ(static_cast<std::int64_t>(out.rank2[2]), 5);
}

TEST(ListRanking, MultipleListsInOneInput) {
  // Two independent lists: 0->1->2 and 3->4.
  std::vector<std::uint64_t> succ{1, 2, 2, 4, 4};
  DirectExec exec;
  auto out = cgm_list_ranking(exec, succ, 2);
  EXPECT_EQ(out.rank1, (std::vector<std::uint64_t>{2, 1, 0, 1, 0}));
}

TEST(ListRanking, OnEmMachines) {
  auto [succ, head] = util::random_list(600, 20);
  auto want = reference_ranks(succ, head);
  SeqEmExec seq(em_config(1, 4, 256));
  EXPECT_EQ(cgm_list_ranking(seq, succ, 8).rank1, want);
  ParEmExec par(em_config(4, 2, 256));
  EXPECT_EQ(cgm_list_ranking(par, succ, 8).rank1, want);
}

TEST(ListRanking, LambdaScalesWithLogV) {
  auto [succ, head] = util::random_list(4096, 21);
  DirectExec exec;
  auto out4 = cgm_list_ranking(exec, succ, 4);
  auto out32 = cgm_list_ranking(exec, succ, 32);
  // More processors -> smaller gather threshold -> more contraction and
  // expansion rounds; still far below n.
  EXPECT_GT(out32.exec.lambda, out4.exec.lambda);
  EXPECT_LT(out32.exec.lambda, 400u);
}

// --- Euler tour ----------------------------------------------------------------

void check_tree_stats(std::span<const std::uint64_t> parent,
                      const EulerTourOutcome& out) {
  const std::uint64_t n = parent.size();
  // Reference depths.
  std::vector<std::uint64_t> depth(n, 0);
  std::vector<std::uint64_t> want_sub(n, 1);
  for (std::uint64_t x = 0; x < n; ++x) {
    std::uint64_t cur = x, d = 0;
    while (parent[cur] != cur) {
      cur = parent[cur];
      ++d;
    }
    depth[x] = d;
  }
  // Reference subtree sizes: accumulate from deepest to shallowest.
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    return depth[a] > depth[b];
  });
  for (auto x : order) {
    if (parent[x] != x) want_sub[parent[x]] += want_sub[x];
  }
  EXPECT_EQ(out.depth, depth);
  EXPECT_EQ(out.subtree_size, want_sub);
}

class EulerTourSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(EulerTourSweep, DepthsAndSubtreesCorrect) {
  const auto [n, v] = GetParam();
  auto parent = util::random_tree(n, 23 * n + v);
  DirectExec exec;
  auto out = cgm_euler_tour(exec, parent, v);
  check_tree_stats(parent, out);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EulerTourSweep,
    ::testing::Values(std::pair<std::size_t, std::uint32_t>{1, 1},
                      std::pair<std::size_t, std::uint32_t>{2, 2},
                      std::pair<std::size_t, std::uint32_t>{30, 4},
                      std::pair<std::size_t, std::uint32_t>{300, 8},
                      std::pair<std::size_t, std::uint32_t>{1000, 16}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "v" +
             std::to_string(info.param.second);
    });

TEST(EulerTour, PathAndStarTrees) {
  DirectExec exec;
  // Path 0 <- 1 <- 2 <- 3.
  std::vector<std::uint64_t> path{0, 0, 1, 2};
  auto out = cgm_euler_tour(exec, path, 2);
  EXPECT_EQ(out.depth, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(out.subtree_size, (std::vector<std::uint64_t>{4, 3, 2, 1}));
  // Star: all children of 0.
  std::vector<std::uint64_t> star{0, 0, 0, 0, 0, 0};
  out = cgm_euler_tour(exec, star, 3);
  EXPECT_EQ(out.depth, (std::vector<std::uint64_t>{0, 1, 1, 1, 1, 1}));
  EXPECT_EQ(out.subtree_size[0], 6u);
}

TEST(EulerTour, TourPositionsAreConsistent) {
  auto parent = util::random_tree(200, 25);
  DirectExec exec;
  auto out = cgm_euler_tour(exec, parent, 8);
  // Entry strictly before exit; nesting property for parent/child.
  for (std::uint64_t x = 0; x < parent.size(); ++x) {
    if (parent[x] == x) continue;
    EXPECT_LT(out.first_pos[x], out.last_pos[x] + 1);
    const auto p = parent[x];
    if (parent[p] != p) {
      EXPECT_LT(out.first_pos[p], out.first_pos[x]);
      EXPECT_GE(out.last_pos[p], out.last_pos[x]);
    }
  }
}

TEST(EulerTour, ForestOfSeveralTrees) {
  // Three trees: a path rooted at 0, a star rooted at 4, an isolated root 9.
  std::vector<std::uint64_t> parent{0, 0, 1, 2, 4, 4, 4, 4, 4, 9};
  DirectExec exec;
  auto out = cgm_euler_tour(exec, parent, 4);
  EXPECT_EQ(out.depth, (std::vector<std::uint64_t>{0, 1, 2, 3, 0, 1, 1, 1, 1,
                                                   0}));
  EXPECT_EQ(out.subtree_size,
            (std::vector<std::uint64_t>{4, 3, 2, 1, 5, 1, 1, 1, 1, 1}));
}

TEST(EulerTour, RandomForest) {
  // Several random trees merged into one parent array.
  std::vector<std::uint64_t> parent;
  for (std::uint64_t t = 0; t < 4; ++t) {
    auto tree = util::random_tree(50 + t * 17, 100 + t);
    const std::uint64_t base = parent.size();
    for (auto p : tree) parent.push_back(base + p);
  }
  DirectExec exec;
  auto out = cgm_euler_tour(exec, parent, 8);
  check_tree_stats(parent, out);
}

TEST(BatchedLcaForest, RejectsForests) {
  std::vector<std::uint64_t> forest{0, 0, 2, 2};  // two roots
  std::vector<std::pair<std::uint64_t, std::uint64_t>> queries{{1, 3}};
  DirectExec exec;
  EXPECT_THROW(cgm_batched_lca(exec, forest, queries, 2),
               std::invalid_argument);
}

TEST(ListRankingCycle, DiagnosesCycles) {
  // 0 -> 1 -> 0 is a cycle, not a list.
  std::vector<std::uint64_t> succ{1, 0};
  DirectExec exec;
  EXPECT_THROW(cgm_list_ranking(exec, succ, 1), std::runtime_error);
}

TEST(EulerTour, OnEmMachines) {
  auto parent = util::random_tree(300, 26);
  SeqEmExec seq(em_config(1, 2, 256));
  auto out = cgm_euler_tour(seq, parent, 8);
  check_tree_stats(parent, out);
  ParEmExec par(em_config(4, 2, 256));
  auto out2 = cgm_euler_tour(par, parent, 8);
  check_tree_stats(parent, out2);
}

// --- connected components -------------------------------------------------------

void check_components(std::uint64_t n, std::span<const util::Edge> edges,
                      std::span<const std::uint64_t> truth,
                      const ComponentsOutcome& out) {
  // Same-partition iff same truth label.
  std::map<std::uint64_t, std::uint64_t> seen;  // out label -> truth label
  for (std::uint64_t x = 0; x < n; ++x) {
    auto [it, inserted] = seen.emplace(out.component[x], truth[x]);
    EXPECT_EQ(it->second, truth[x]) << "vertex " << x;
  }
  std::set<std::uint64_t> truth_labels(truth.begin(), truth.end());
  EXPECT_EQ(seen.size(), truth_labels.size());

  // The spanning forest has exactly n - #components edges, all distinct,
  // acyclic.
  EXPECT_EQ(out.tree_edges.size(), n - truth_labels.size());
  std::set<std::uint64_t> distinct(out.tree_edges.begin(),
                                   out.tree_edges.end());
  EXPECT_EQ(distinct.size(), out.tree_edges.size());
  // Acyclicity via union-find over the chosen edges.
  std::vector<std::uint64_t> dsu(n);
  std::iota(dsu.begin(), dsu.end(), 0u);
  std::function<std::uint64_t(std::uint64_t)> find =
      [&](std::uint64_t x) -> std::uint64_t {
    while (dsu[x] != x) x = dsu[x] = dsu[dsu[x]];
    return x;
  };
  for (auto id : out.tree_edges) {
    const auto a = find(edges[id].u);
    const auto b = find(edges[id].v);
    EXPECT_NE(a, b) << "cycle via edge " << id;
    dsu[a] = b;
  }
}

class ComponentsSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::uint32_t>> {};

TEST_P(ComponentsSweep, LabelsAndForestCorrect) {
  const auto [n, k, v] = GetParam();
  auto [edges, truth] =
      util::random_components_graph(n, k, n / 2, 29 * n + v);
  DirectExec exec;
  auto out = cgm_connected_components(exec, n, edges, v);
  check_components(n, edges, truth, out);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ComponentsSweep,
    ::testing::Values(std::tuple<std::size_t, std::size_t, std::uint32_t>{
                          10, 2, 2},
                      std::tuple<std::size_t, std::size_t, std::uint32_t>{
                          100, 5, 4},
                      std::tuple<std::size_t, std::size_t, std::uint32_t>{
                          500, 3, 8},
                      std::tuple<std::size_t, std::size_t, std::uint32_t>{
                          1000, 20, 16}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param)) + "v" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Components, EdgelessGraph) {
  DirectExec exec;
  auto out = cgm_connected_components(exec, 8, {}, 4);
  for (std::uint64_t x = 0; x < 8; ++x) EXPECT_EQ(out.component[x], x);
  EXPECT_TRUE(out.tree_edges.empty());
}

TEST(Components, SingleComponent) {
  auto edges = util::random_graph(64, 200, 30);
  DirectExec exec;
  auto out = cgm_connected_components(exec, 64, edges, 8);
  // A random graph with 200 edges on 64 vertices is connected w.h.p. —
  // verify against union-find truth instead of assuming.
  std::vector<std::uint64_t> truth(64);
  std::iota(truth.begin(), truth.end(), 0u);
  std::function<std::uint64_t(std::uint64_t)> find =
      [&](std::uint64_t x) -> std::uint64_t {
    while (truth[x] != x) x = truth[x] = truth[truth[x]];
    return x;
  };
  for (const auto& e : edges) truth[find(e.u)] = find(e.v);
  for (auto& t : truth) t = find(&t - truth.data());
  check_components(64, edges, truth, out);
}

TEST(Components, OnEmMachines) {
  auto [edges, truth] = util::random_components_graph(300, 4, 150, 31);
  SeqEmExec seq(em_config(1, 4, 256));
  auto out = cgm_connected_components(seq, 300, edges, 8);
  check_components(300, edges, truth, out);
  ParEmExec par(em_config(2, 2, 256));
  auto out2 = cgm_connected_components(par, 300, edges, 8);
  check_components(300, edges, truth, out2);
}

// --- batched LCA -----------------------------------------------------------------

std::uint64_t reference_lca(std::span<const std::uint64_t> parent,
                            std::uint64_t u, std::uint64_t v) {
  std::set<std::uint64_t> anc;
  for (std::uint64_t x = u;; x = parent[x]) {
    anc.insert(x);
    if (parent[x] == x) break;
  }
  for (std::uint64_t x = v;; x = parent[x]) {
    if (anc.count(x)) return x;
    if (parent[x] == x) return x;
  }
}

TEST(BatchedLca, RandomTreeRandomQueries) {
  const std::uint64_t n = 300;
  auto parent = util::random_tree(n, 33);
  util::Rng rng(34);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> queries;
  for (int i = 0; i < 200; ++i) {
    queries.emplace_back(rng.below(n), rng.below(n));
  }
  DirectExec exec;
  auto out = cgm_batched_lca(exec, parent, queries, 8);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(out.lca[i],
              reference_lca(parent, queries[i].first, queries[i].second))
        << "query " << i;
  }
}

TEST(BatchedLca, DegenerateQueries) {
  std::vector<std::uint64_t> path{0, 0, 1, 2, 3};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> queries{
      {4, 4}, {0, 4}, {4, 0}, {2, 3}, {1, 1}};
  DirectExec exec;
  auto out = cgm_batched_lca(exec, path, queries, 2);
  EXPECT_EQ(out.lca, (std::vector<std::uint64_t>{4, 0, 0, 2, 1}));
}

TEST(BatchedLca, OnEmMachine) {
  auto parent = util::random_tree(200, 35);
  util::Rng rng(36);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> queries;
  for (int i = 0; i < 100; ++i) {
    queries.emplace_back(rng.below(200), rng.below(200));
  }
  SeqEmExec seq(em_config(1, 2, 256));
  auto out = cgm_batched_lca(seq, parent, queries, 8);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(out.lca[i],
              reference_lca(parent, queries[i].first, queries[i].second));
  }
}

}  // namespace
}  // namespace embsp::cgm
