#include <gtest/gtest.h>

#include "bsp/cost_model.hpp"
#include "bsp/direct_runtime.hpp"
#include "bsp/message.hpp"
#include "bsp/params.hpp"
#include "test_programs.hpp"

namespace embsp::bsp {
namespace {

using embsp::testing::IrregularProgram;
using embsp::testing::PrefixSumProgram;
using embsp::testing::RingProgram;

TEST(Params, ValidationCatchesBadMemory) {
  MachineParams m;
  m.p = 1;
  m.bsp.v = 4;
  m.em.M = 100;
  m.em.D = 4;
  m.em.B = 64;  // M < D*B
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Params, ValidationRequiresDivisibility) {
  MachineParams m;
  m.p = 3;
  m.bsp.v = 10;  // not a multiple of 3
  m.em.M = 1 << 20;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Params, DefaultGroupSize) {
  EXPECT_EQ(default_group_size(1024, 100), 10u);
  EXPECT_EQ(default_group_size(50, 100), 1u);   // at least 1
  EXPECT_EQ(default_group_size(1024, 0), 1u);
}

TEST(Params, MinVirtualProcessorsScalesWithDisks) {
  MachineParams m;
  m.p = 2;
  m.bsp.v = 2;
  m.em.M = 1 << 20;
  m.em.B = 1 << 10;
  m.em.D = 1;
  const auto v1 = min_virtual_processors(m, 1);
  m.em.D = 4;
  const auto v4 = min_virtual_processors(m, 1);
  EXPECT_EQ(v4, 4 * v1);
}

TEST(CostModel, PacketsForRoundsUp) {
  EXPECT_EQ(packets_for(0, 64), 1u);   // empty messages still cost a packet
  EXPECT_EQ(packets_for(1, 64), 1u);
  EXPECT_EQ(packets_for(64, 64), 1u);
  EXPECT_EQ(packets_for(65, 64), 2u);
}

TEST(CostModel, CommunicationTimeUsesMaxAndL) {
  RunCosts costs;
  SuperstepCost s;
  s.max_packets_sent = 10;
  s.max_packets_received = 5;
  costs.supersteps.push_back(s);
  BspParams p;
  p.g = 2.0;
  p.L = 100.0;  // L dominates
  EXPECT_DOUBLE_EQ(costs.communication_time(p), 100.0);
  p.L = 1.0;
  EXPECT_DOUBLE_EQ(costs.communication_time(p), 30.0);
}

TEST(Message, OutboxRejectsBadDestination) {
  Outbox out(0, 4);
  EXPECT_THROW(out.send_value<int>(4, 1), std::out_of_range);
}

TEST(Message, InboxSortsBySrcThenSeq) {
  std::vector<Message> msgs;
  msgs.push_back({2, 0, 0, {}});
  msgs.push_back({1, 0, 1, {}});
  msgs.push_back({1, 0, 0, {}});
  Inbox in(std::move(msgs));
  EXPECT_EQ(in.all()[0].src, 1u);
  EXPECT_EQ(in.all()[0].seq, 0u);
  EXPECT_EQ(in.all()[1].src, 1u);
  EXPECT_EQ(in.all()[1].seq, 1u);
  EXPECT_EQ(in.all()[2].src, 2u);
}

TEST(Message, TypedRoundTrip) {
  Outbox out(3, 8);
  out.send_value<double>(1, 2.5);
  out.send_vector<std::uint32_t>(1, {7, 8, 9});
  auto msgs = out.take();
  Inbox in(std::move(msgs));
  EXPECT_DOUBLE_EQ(in.value<double>(0), 2.5);
  EXPECT_EQ(in.vector<std::uint32_t>(1), (std::vector<std::uint32_t>{7, 8, 9}));
}

TEST(DirectRuntime, PrefixSumCorrect) {
  PrefixSumProgram prog;
  DirectRuntime rt;
  constexpr std::uint32_t v = 16;
  std::vector<std::uint64_t> prefixes(v);
  auto result = rt.run<PrefixSumProgram>(
      prog, v,
      [](std::uint32_t pid) {
        PrefixSumProgram::State s;
        s.value = pid + 1;
        return s;
      },
      [&](std::uint32_t pid, PrefixSumProgram::State& s) {
        prefixes[pid] = s.prefix;
      });
  for (std::uint32_t i = 0; i < v; ++i) {
    EXPECT_EQ(prefixes[i], static_cast<std::uint64_t>(i) * (i + 1) / 2);
  }
  EXPECT_EQ(result.lambda(), 2u);
}

TEST(DirectRuntime, MeasuresContextAndGamma) {
  RingProgram prog;
  prog.rounds = 3;
  auto req = measure_requirements<RingProgram>(
      prog, 4, [](std::uint32_t) { return RingProgram::State{}; });
  EXPECT_EQ(req.lambda, 4u);  // rounds + final receive
  EXPECT_GT(req.mu, 0u);
  EXPECT_GT(req.gamma, 0u);
}

TEST(DirectRuntime, IrregularTrafficRuns) {
  IrregularProgram prog;
  DirectRuntime rt;
  std::uint64_t total = 0;
  rt.run<IrregularProgram>(
      prog, 12, [](std::uint32_t) { return IrregularProgram::State{}; },
      [&](std::uint32_t, IrregularProgram::State& s) { total += s.checksum; });
  EXPECT_NE(total, 0u);
}

// A program that sends a message in its final superstep — a bug the
// runtime must diagnose.
struct DanglingSendProgram {
  struct State {
    void serialize(util::Writer&) const {}
    void deserialize(util::Reader&) {}
  };
  bool superstep(std::size_t, const bsp::ProcEnv& env, State&,
                 const bsp::Inbox&, bsp::Outbox& out) const {
    out.send_value<int>((env.pid + 1) % env.nprocs, 1);
    return false;
  }
};

TEST(DirectRuntime, DanglingSendDetected) {
  DanglingSendProgram prog;
  DirectRuntime rt;
  EXPECT_THROW(rt.run<DanglingSendProgram>(
                   prog, 4,
                   [](std::uint32_t) { return DanglingSendProgram::State{}; },
                   [](std::uint32_t, DanglingSendProgram::State&) {}),
               std::runtime_error);
}

// A program that never terminates must hit the superstep guard.
struct ForeverProgram {
  struct State {
    void serialize(util::Writer&) const {}
    void deserialize(util::Reader&) {}
  };
  bool superstep(std::size_t, const bsp::ProcEnv&, State&, const bsp::Inbox&,
                 bsp::Outbox&) const {
    return true;
  }
};

TEST(DirectRuntime, RunawayProgramGuard) {
  ForeverProgram prog;
  DirectRuntime rt;
  DirectRuntime::Options opt;
  opt.max_supersteps = 10;
  EXPECT_THROW(
      rt.run<ForeverProgram>(
          prog, 2, [](std::uint32_t) { return ForeverProgram::State{}; },
          [](std::uint32_t, ForeverProgram::State&) {}, opt),
      std::runtime_error);
}

TEST(DirectRuntime, CostAccountingCountsCommunication) {
  PrefixSumProgram prog;
  DirectRuntime rt;
  auto result = rt.run<PrefixSumProgram>(
      prog, 8,
      [](std::uint32_t pid) {
        PrefixSumProgram::State s;
        s.value = pid;
        return s;
      },
      [](std::uint32_t, PrefixSumProgram::State&) {});
  // Superstep 0: processor 0 sends 7 messages of 8 bytes.
  EXPECT_EQ(result.costs.supersteps[0].max_bytes_sent, 7u * 8u);
  // Superstep 1: processor 7 receives 7 messages.
  EXPECT_EQ(result.costs.supersteps[1].max_bytes_received, 7u * 8u);
  // gamma is metered in wire bytes: payload + fixed per-message overhead.
  EXPECT_EQ(result.gamma(), 7u * (8u + kWireOverheadPerMessage));
}

TEST(CostModel, PacketCountDropsWithPacketSize) {
  // Observation 1 flavor: the same message volume costs fewer BSP* packets
  // as b grows, until each message fits one packet.
  RunCosts costs;
  SuperstepCost s;
  s.max_packets_sent = 0;
  costs.supersteps.push_back(s);
  const std::uint64_t msg = 1000;
  EXPECT_EQ(packets_for(msg, 1), 1000u);
  EXPECT_EQ(packets_for(msg, 64), 16u);
  EXPECT_EQ(packets_for(msg, 1024), 1u);
  EXPECT_EQ(packets_for(msg, 4096), 1u);  // floor at one packet
}

TEST(Message, SelfSendDelivered) {
  struct SelfProgram {
    struct State {
      std::uint64_t got = 0;
      void serialize(util::Writer& w) const { w.write(got); }
      void deserialize(util::Reader& r) { got = r.read<std::uint64_t>(); }
    };
    bool superstep(std::size_t step, const ProcEnv& env, State& s,
                   const Inbox& in, Outbox& out) const {
      if (step == 0) {
        out.send_value<std::uint64_t>(env.pid, env.pid * 7 + 1);
        return true;
      }
      s.got = in.value<std::uint64_t>(0);
      return false;
    }
  };
  SelfProgram prog;
  DirectRuntime rt;
  rt.run<SelfProgram>(
      prog, 5, [](std::uint32_t) { return SelfProgram::State{}; },
      [](std::uint32_t pid, SelfProgram::State& s) {
        EXPECT_EQ(s.got, pid * 7 + 1);
      });
}

TEST(Message, InboxPreservesSendOrderPerSource) {
  std::vector<Message> msgs;
  // Source 3 sent seq 0,1,2 — deliver shuffled.
  msgs.push_back({3, 0, 2, {std::byte{2}}});
  msgs.push_back({3, 0, 0, {std::byte{0}}});
  msgs.push_back({3, 0, 1, {std::byte{1}}});
  Inbox in(std::move(msgs));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(in.all()[i].payload[0], static_cast<std::byte>(i));
  }
}

TEST(WorkMeterTest, AccumulatesAndResets) {
  WorkMeter m;
  m.charge(10);
  m.charge(5);
  EXPECT_EQ(m.total(), 15u);
  m.reset();
  EXPECT_EQ(m.total(), 0u);
  ProcEnv env{0, 1, &m};
  env.charge(7);
  EXPECT_EQ(m.total(), 7u);
  ProcEnv no_meter{0, 1, nullptr};
  no_meter.charge(100);  // must not crash
}

}  // namespace
}  // namespace embsp::bsp
