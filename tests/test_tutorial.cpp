// The tutorial's GlobalMax program, verified verbatim so docs/TUTORIAL.md
// never drifts from reality.
#include <gtest/gtest.h>

#include "embsp/embsp.hpp"
#include "util/workloads.hpp"

namespace embsp {
namespace {

struct GlobalMax {
  struct State {
    std::vector<std::uint64_t> numbers;
    std::uint64_t best = 0;
    std::uint8_t active = 1;

    void serialize(util::Writer& w) const {
      w.write_vector(numbers);
      w.write(best);
      w.write(active);
    }
    void deserialize(util::Reader& r) {
      numbers = r.read_vector<std::uint64_t>();
      best = r.read<std::uint64_t>();
      active = r.read<std::uint8_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    if (step == 0) {
      env.charge(s.numbers.size());
      for (auto x : s.numbers) s.best = std::max(s.best, x);
      s.numbers.clear();
    }
    for (std::size_t i = 0; i < in.count(); ++i) {
      s.best = std::max(s.best, in.value<std::uint64_t>(i));
    }
    const std::uint32_t stride = 1u << step;
    if (stride >= env.nprocs) return false;
    if (s.active && (env.pid & stride) != 0) {
      out.send_value(env.pid - stride, s.best);
      s.active = 0;
    }
    return true;
  }
};

TEST(Tutorial, GlobalMaxOnAllExecutors) {
  constexpr std::uint32_t kV = 64;
  const std::size_t n = 5000;
  auto numbers = util::random_keys(n, 2028);
  const std::uint64_t want = *std::max_element(numbers.begin(), numbers.end());

  GlobalMax prog;
  cgm::BlockDist dist{n, kV};
  auto make_state = [&](std::uint32_t pid) {
    GlobalMax::State s;
    s.numbers.assign(numbers.begin() + dist.first(pid),
                     numbers.begin() + dist.first(pid) + dist.count(pid));
    return s;
  };

  // Direct.
  std::uint64_t got = 0;
  bsp::DirectRuntime direct;
  direct.run<GlobalMax>(prog, kV, make_state,
                        [&](std::uint32_t pid, GlobalMax::State& s) {
                          if (pid == 0) got = s.best;
                        });
  EXPECT_EQ(got, want);

  // Sequential EM with measured requirements.
  sim::SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = kV;
  cfg.machine.em = {1 << 20, 4, 4096, 1.0};
  got = 0;
  auto r1 = sim::simulate_measured<GlobalMax>(
      prog, cfg, make_state, [&](std::uint32_t pid, GlobalMax::State& s) {
        if (pid == 0) got = s.best;
      });
  EXPECT_EQ(got, want);
  EXPECT_EQ(r1.lambda(), 7u);  // log2(64) + 1 supersteps

  // Parallel EM via the executor adapter.
  cfg.machine.p = 4;
  cgm::ParEmExec exec(cfg);
  got = 0;
  exec.run(prog, kV, std::function<GlobalMax::State(std::uint32_t)>(make_state),
           std::function<void(std::uint32_t, GlobalMax::State&)>(
               [&](std::uint32_t pid, GlobalMax::State& s) {
                 if (pid == 0) got = s.best;
               }));
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace embsp
