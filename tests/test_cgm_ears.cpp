// Ear decomposition (Table 1, Group C) — verified by checking the ear
// decomposition properties directly.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cgm/graph_ears.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {
namespace {

/// 2-edge-connected random graph: a Hamiltonian-ish cycle + extra chords.
std::vector<util::Edge> two_edge_connected_graph(std::uint64_t n,
                                                 std::uint64_t chords,
                                                 std::uint64_t seed) {
  auto perm = util::random_permutation(n, seed);
  std::vector<util::Edge> edges;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (std::uint64_t i = 0; i < n; ++i) {
    auto key = std::minmax(perm[i], perm[(i + 1) % n]);
    if (seen.insert(key).second) edges.push_back({perm[i], perm[(i + 1) % n]});
  }
  util::Rng rng(seed ^ 0xea55);
  while (chords > 0) {
    auto a = rng.below(n), b = rng.below(n);
    if (a == b) continue;
    auto key = std::minmax(a, b);
    if (!seen.insert(key).second) continue;
    edges.push_back({a, b});
    --chords;
  }
  return edges;
}

/// Validates the ear decomposition properties:
///   * the number of ears is m - n + 1;
///   * ear 0's edges form a simple cycle;
///   * every later ear's edges form a simple path whose two endpoints lie
///     on earlier ears and whose internal vertices are new.
void check_ears(std::uint64_t n, std::span<const util::Edge> edges,
                const EarDecompositionOutcome& out) {
  ASSERT_EQ(out.num_ears, edges.size() - (n - 1));
  std::map<std::uint64_t, std::vector<std::size_t>> by_ear;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    ASSERT_NE(out.ear[e], UINT64_MAX) << "edge " << e << " unassigned";
    by_ear[out.ear[e]].push_back(e);
  }
  ASSERT_EQ(by_ear.size(), out.num_ears);

  std::vector<std::uint8_t> on_earlier(n, 0);
  for (std::uint64_t k = 0; k < out.num_ears; ++k) {
    const auto& members = by_ear.at(k);
    // Degree count within the ear.
    std::map<std::uint64_t, int> deg;
    for (auto e : members) {
      deg[edges[e].u] += 1;
      deg[edges[e].v] += 1;
    }
    std::vector<std::uint64_t> endpoints;
    for (const auto& [vertex, d] : deg) {
      ASSERT_LE(d, 2) << "ear " << k << " is not a path/cycle";
      if (d == 1) endpoints.push_back(vertex);
    }
    // Connectivity of the ear's edge set (walk from one endpoint/any).
    {
      std::map<std::uint64_t, std::vector<std::uint64_t>> eadj;
      for (auto e : members) {
        eadj[edges[e].u].push_back(edges[e].v);
        eadj[edges[e].v].push_back(edges[e].u);
      }
      std::set<std::uint64_t> visited;
      std::vector<std::uint64_t> stack{deg.begin()->first};
      while (!stack.empty()) {
        const auto u = stack.back();
        stack.pop_back();
        if (!visited.insert(u).second) continue;
        for (auto w : eadj[u]) stack.push_back(w);
      }
      ASSERT_EQ(visited.size(), deg.size()) << "ear " << k << " disconnected";
    }
    if (k == 0) {
      EXPECT_TRUE(endpoints.empty()) << "ear 0 must be a cycle";
    } else {
      ASSERT_EQ(endpoints.size(), 2u) << "ear " << k << " must be a path";
      for (auto v : endpoints) {
        EXPECT_TRUE(on_earlier[v])
            << "ear " << k << " endpoint " << v << " not on earlier ears";
      }
      for (const auto& [vertex, d] : deg) {
        if (d == 2) {
          EXPECT_FALSE(on_earlier[vertex])
              << "ear " << k << " internal vertex " << vertex
              << " already used (ear not open)";
        }
      }
    }
    for (const auto& [vertex, d] : deg) on_earlier[vertex] = 1;
  }
}

TEST(EarDecomposition, SingleCycle) {
  std::vector<util::Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  DirectExec exec;
  auto out = cgm_ear_decomposition(exec, 4, edges, 2);
  EXPECT_EQ(out.num_ears, 1u);
  check_ears(4, edges, out);
}

TEST(EarDecomposition, ThetaGraph) {
  // Two vertices joined by three disjoint paths: 2 ears.
  std::vector<util::Edge> edges{{0, 2}, {2, 1},   // path A
                                {0, 3}, {3, 1},   // path B
                                {0, 4}, {4, 1}};  // path C
  DirectExec exec;
  auto out = cgm_ear_decomposition(exec, 5, edges, 2);
  EXPECT_EQ(out.num_ears, 2u);
  check_ears(5, edges, out);
}

class EarSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>> {};

TEST_P(EarSweep, PropertiesHold) {
  const auto [n, chords, v] = GetParam();
  auto edges = two_edge_connected_graph(n, chords, 53 * n + chords + v);
  DirectExec exec;
  auto out = cgm_ear_decomposition(exec, n, edges, v);
  check_ears(n, edges, out);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EarSweep,
    ::testing::Values(
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>{6, 2, 2},
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>{40, 15, 4},
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>{120, 80, 8},
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>{300, 40,
                                                                16}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "c" +
             std::to_string(std::get<1>(info.param)) + "v" +
             std::to_string(std::get<2>(info.param));
    });

TEST(EarDecomposition, BridgeRejected) {
  std::vector<util::Edge> edges{{0, 1}, {1, 2}, {2, 0}, {2, 3}};  // bridge 2-3
  DirectExec exec;
  EXPECT_THROW(cgm_ear_decomposition(exec, 4, edges, 2),
               std::invalid_argument);
}

TEST(EarDecomposition, OnEmMachine) {
  auto edges = two_edge_connected_graph(100, 50, 777);
  sim::SimConfig cfg;
  cfg.machine.p = 2;
  cfg.machine.em = {1 << 22, 2, 256, 1.0};
  ParEmExec exec(cfg);
  auto out = cgm_ear_decomposition(exec, 100, edges, 8);
  check_ears(100, edges, out);
}

}  // namespace
}  // namespace embsp::cgm
