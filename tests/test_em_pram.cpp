// The PRAM-to-EM simulation framework ([14] style) and two classic PRAM
// algorithms running on it.
#include <gtest/gtest.h>

#include "baseline/em_pram.hpp"
#include "util/workloads.hpp"

namespace embsp::baseline {
namespace {

/// Hillis–Steele inclusive prefix sums: step r, processor i >= 2^r reads
/// x[i - 2^r] and adds it to x[i].
class PrefixSumPram : public PramProgram {
 public:
  explicit PrefixSumPram(std::uint64_t n) : n_(n) {}

  void plan_reads(std::uint64_t step, std::uint64_t pid,
                  const PramContext&,
                  std::vector<std::uint64_t>& addrs) const override {
    const std::uint64_t stride = 1ull << step;
    if (pid >= stride) {
      addrs.push_back(pid - stride);  // x[i - 2^r]
      addrs.push_back(pid);           // x[i]
    }
  }

  bool compute(std::uint64_t step, std::uint64_t pid, PramContext&,
               std::span<const std::uint64_t> values,
               std::vector<PramWrite>& writes) const override {
    const std::uint64_t stride = 1ull << step;
    if (pid >= stride) {
      writes.push_back(PramWrite{pid, values[0] + values[1]});
    }
    return (stride << 1) < n_;
  }

 private:
  std::uint64_t n_;
};

/// Pointer jumping list ranking: memory = [succ[0..n) | rank[0..n)].
/// Each jump round takes two PRAM steps (the second read depends on the
/// first): even steps load succ[i], odd steps fetch succ/rank of the
/// successor and update.
class ListRankPram : public PramProgram {
 public:
  explicit ListRankPram(std::uint64_t n) : n_(n) {}

  void plan_reads(std::uint64_t step, std::uint64_t pid,
                  const PramContext& ctx,
                  std::vector<std::uint64_t>& addrs) const override {
    if (step % 2 == 0) {
      addrs.push_back(pid);       // succ[i]
      addrs.push_back(n_ + pid);  // rank[i]
    } else {
      const std::uint64_t s = ctx.reg[0];
      addrs.push_back(s);       // succ[s]
      addrs.push_back(n_ + s);  // rank[s]
    }
  }

  bool compute(std::uint64_t step, std::uint64_t pid, PramContext& ctx,
               std::span<const std::uint64_t> values,
               std::vector<PramWrite>& writes) const override {
    if (step % 2 == 0) {
      ctx.reg[0] = values[0];  // succ[i]
      ctx.reg[1] = values[1];  // rank[i]
      return true;
    }
    const std::uint64_t succ_s = values[0];
    const std::uint64_t rank_s = values[1];
    if (ctx.reg[0] != pid) {  // not yet at the tail
      writes.push_back(PramWrite{pid, succ_s});
      writes.push_back(PramWrite{n_ + pid, ctx.reg[1] + rank_s});
    }
    // ceil(log2 n) jump rounds complete every chain.
    const std::uint64_t round = step / 2;
    return (1ull << (round + 1)) < n_;
  }

 private:
  std::uint64_t n_;
};

TEST(EmPram, PrefixSums) {
  const std::uint64_t n = 300;
  auto values = util::random_keys(n, 1);
  for (auto& v : values) v %= 1000;
  em::DiskArray disks(2, 128);
  PramConfig cfg;
  cfg.num_procs = n;
  cfg.memory_cells = n;
  EmPramStats st;
  auto mem = em_pram_run(disks, PrefixSumPram(n), cfg, values, 8192, &st);
  std::uint64_t run = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    run += values[i];
    EXPECT_EQ(mem[i], run) << "index " << i;
  }
  EXPECT_EQ(st.steps, 9u);  // ceil(log2 300)
  EXPECT_GT(st.total.parallel_ios, 0u);
}

TEST(EmPram, ListRankingMatchesReference) {
  const std::uint64_t n = 200;
  auto [succ, head] = util::random_list(n, 2);
  std::vector<std::uint64_t> memory(2 * n);
  for (std::uint64_t i = 0; i < n; ++i) {
    memory[i] = succ[i];
    memory[n + i] = succ[i] == i ? 0 : 1;
  }
  em::DiskArray disks(4, 128);
  PramConfig cfg;
  cfg.num_procs = n;
  cfg.memory_cells = 2 * n;
  EmPramStats st;
  auto mem = em_pram_run(disks, ListRankPram(n), cfg, memory, 8192, &st);
  std::uint64_t cur = head;
  for (std::uint64_t d = 0; d < n; ++d) {
    EXPECT_EQ(mem[n + cur], n - 1 - d) << "node " << cur;
    cur = succ[cur];
  }
}

TEST(EmPram, PriorityCrcwSemantics) {
  // All processors write the same cell; the highest pid must win.
  class AllWrite : public PramProgram {
   public:
    void plan_reads(std::uint64_t, std::uint64_t, const PramContext&,
                    std::vector<std::uint64_t>&) const override {}
    bool compute(std::uint64_t, std::uint64_t pid, PramContext&,
                 std::span<const std::uint64_t>,
                 std::vector<PramWrite>& writes) const override {
      writes.push_back(PramWrite{0, 1000 + pid});
      return false;
    }
  };
  em::DiskArray disks(2, 128);
  PramConfig cfg;
  cfg.num_procs = 17;
  cfg.memory_cells = 4;
  std::vector<std::uint64_t> memory(4, 0);
  auto mem = em_pram_run(disks, AllWrite{}, cfg, memory, 8192);
  EXPECT_EQ(mem[0], 1000u + 16u);
}

TEST(EmPram, IoScalesWithSortPerStep) {
  // Doubling n roughly doubles the per-step cost (one sort per step).
  auto run_ios = [](std::uint64_t n) {
    auto values = util::random_keys(n, 3);
    em::DiskArray disks(2, 256);
    PramConfig cfg;
    cfg.num_procs = n;
    cfg.memory_cells = n;
    EmPramStats st;
    em_pram_run(disks, PrefixSumPram(n), cfg, values, 1 << 14, &st);
    return std::pair<std::uint64_t, std::size_t>{st.total.parallel_ios,
                                                 st.steps};
  };
  auto [io1, steps1] = run_ios(1024);
  auto [io2, steps2] = run_ios(4096);
  EXPECT_EQ(steps1 + 2, steps2);  // log2(4096) - log2(1024)
  const double per_step1 = static_cast<double>(io1) / steps1;
  const double per_step2 = static_cast<double>(io2) / steps2;
  EXPECT_GT(per_step2, 2.5 * per_step1);
  EXPECT_LT(per_step2, 6.0 * per_step1);
}

TEST(EmPram, ValidatesLimits) {
  class Nop : public PramProgram {
   public:
    void plan_reads(std::uint64_t, std::uint64_t, const PramContext&,
                    std::vector<std::uint64_t>&) const override {}
    bool compute(std::uint64_t, std::uint64_t, PramContext&,
                 std::span<const std::uint64_t>,
                 std::vector<PramWrite>&) const override {
      return false;
    }
  };
  em::DiskArray disks(1, 128);
  PramConfig cfg;
  cfg.num_procs = 4;
  cfg.memory_cells = 2;
  std::vector<std::uint64_t> wrong_size(3, 0);
  EXPECT_THROW(em_pram_run(disks, Nop{}, cfg, wrong_size, 4096),
               std::invalid_argument);

  class BadRead : public PramProgram {
   public:
    void plan_reads(std::uint64_t, std::uint64_t, const PramContext&,
                    std::vector<std::uint64_t>& addrs) const override {
      addrs.push_back(99);  // out of range
    }
    bool compute(std::uint64_t, std::uint64_t, PramContext&,
                 std::span<const std::uint64_t>,
                 std::vector<PramWrite>&) const override {
      return false;
    }
  };
  std::vector<std::uint64_t> memory(2, 0);
  EXPECT_THROW(em_pram_run(disks, BadRead{}, cfg, memory, 4096),
               std::out_of_range);
}

}  // namespace
}  // namespace embsp::baseline
