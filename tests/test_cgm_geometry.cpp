// Group B geometry algorithms across executors, validated against brute
// force references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cgm/geometry_closest_pair.hpp"
#include "cgm/geometry_dominance.hpp"
#include "cgm/geometry_envelope.hpp"
#include "cgm/geometry_hull.hpp"
#include "cgm/geometry_maxima.hpp"
#include "util/workloads.hpp"

namespace embsp::cgm {
namespace {

sim::SimConfig em_config(std::uint32_t p, std::size_t D, std::size_t B) {
  sim::SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.em.D = D;
  cfg.machine.em.B = B;
  cfg.machine.em.M = 1 << 22;
  return cfg;
}

// --- staircase helpers ------------------------------------------------------

TEST(Staircase, MergeKeepsOnlyMaxima) {
  std::vector<StairPoint> stairs;
  std::vector<StairPoint> pts{{1, 5}, {2, 4}, {3, 3}, {1.5, 4.5}, {2, 2}};
  merge_staircase(stairs, pts);
  // (2,2) dominated by (2,4)/(3,3); (1.5,4.5) dominated by (2,4)? no:
  // 2>1.5, 4<4.5 — kept.
  for (std::size_t i = 1; i < stairs.size(); ++i) {
    EXPECT_GT(stairs[i].y, stairs[i - 1].y);
    EXPECT_LT(stairs[i].z, stairs[i - 1].z);
  }
  EXPECT_TRUE(staircase_dominates(stairs, 0.5, 0.5));
  EXPECT_FALSE(staircase_dominates(stairs, 3.0, 3.0));  // strictness
  EXPECT_FALSE(staircase_dominates(stairs, 10.0, 0.0));
}

TEST(Staircase, DominationIsStrict) {
  std::vector<StairPoint> stairs;
  std::vector<StairPoint> pts{{2, 2}};
  merge_staircase(stairs, pts);
  EXPECT_TRUE(staircase_dominates(stairs, 1, 1));
  EXPECT_FALSE(staircase_dominates(stairs, 2, 1));  // equal y
  EXPECT_FALSE(staircase_dominates(stairs, 1, 2));  // equal z
}

// --- 3D maxima ---------------------------------------------------------------

class MaximaSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(MaximaSweep, MatchesBruteForceDirect) {
  const auto [n, v] = GetParam();
  auto pts = util::random_points_3d(n, 17 * n + v);
  DirectExec exec;
  auto out = cgm_3d_maxima(exec, pts, v);
  EXPECT_EQ(out.maximal, maxima3d_bruteforce(pts));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MaximaSweep,
    ::testing::Values(std::pair<std::size_t, std::uint32_t>{1, 1},
                      std::pair<std::size_t, std::uint32_t>{10, 4},
                      std::pair<std::size_t, std::uint32_t>{200, 8},
                      std::pair<std::size_t, std::uint32_t>{500, 16},
                      std::pair<std::size_t, std::uint32_t>{500, 3}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "v" +
             std::to_string(info.param.second);
    });

TEST(Maxima, OnEmMachines) {
  auto pts = util::random_points_3d(400, 99);
  auto want = maxima3d_bruteforce(pts);
  SeqEmExec seq(em_config(1, 4, 256));
  EXPECT_EQ(cgm_3d_maxima(seq, pts, 8).maximal, want);
  ParEmExec par(em_config(4, 2, 256));
  EXPECT_EQ(cgm_3d_maxima(par, pts, 8).maximal, want);
}

TEST(Maxima, LambdaIsLogarithmic) {
  auto pts = util::random_points_3d(256, 5);
  DirectExec exec;
  auto out = cgm_3d_maxima(exec, pts, 16);
  // 4 sort steps + log2(16) doubling rounds + final sweep.
  EXPECT_EQ(out.exec.lambda, 4u + 4u + 1u);
}

// --- dominance counting ------------------------------------------------------

TEST(Dominance, MatchesBruteForceDirect) {
  const std::size_t n = 300;
  auto pts = util::random_points_2d(n, 7);
  auto weights = util::random_keys(n, 8);
  for (auto& w : weights) w %= 1000;
  DirectExec exec;
  auto out = cgm_dominance_counts(exec, pts, weights, 8);
  EXPECT_EQ(out.counts, dominance_bruteforce(pts, weights));
  EXPECT_EQ(out.exec.lambda, 15u);  // O(1) supersteps
}

TEST(Dominance, UnitWeightsSmall) {
  std::vector<util::Point2D> pts{{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.15},
                                 {0.05, 0.4}};
  std::vector<std::uint64_t> w(4, 1);
  DirectExec exec;
  auto out = cgm_dominance_counts(exec, pts, w, 2);
  EXPECT_EQ(out.counts, (std::vector<std::uint64_t>{0, 1, 1, 0}));
}

TEST(Dominance, OnEmMachines) {
  const std::size_t n = 500;
  auto pts = util::random_points_2d(n, 9);
  std::vector<std::uint64_t> weights(n, 1);
  auto want = dominance_bruteforce(pts, weights);
  SeqEmExec seq(em_config(1, 4, 256));
  EXPECT_EQ(cgm_dominance_counts(seq, pts, weights, 8).counts, want);
  ParEmExec par(em_config(2, 2, 256));
  EXPECT_EQ(cgm_dominance_counts(par, pts, weights, 8).counts, want);
}

TEST(Dominance, SingleProcessor) {
  auto pts = util::random_points_2d(100, 10);
  std::vector<std::uint64_t> weights(100, 2);
  DirectExec exec;
  EXPECT_EQ(cgm_dominance_counts(exec, pts, weights, 1).counts,
            dominance_bruteforce(pts, weights));
}

// --- closest pair -------------------------------------------------------------

double brute_closest2(std::span<const util::Point2D> pts) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double dx = pts[i].x - pts[j].x;
      const double dy = pts[i].y - pts[j].y;
      best = std::min(best, dx * dx + dy * dy);
    }
  }
  return best;
}

class ClosestPairSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(ClosestPairSweep, MatchesBruteForce) {
  const auto [n, v] = GetParam();
  auto pts = util::random_points_2d(n, 31 * n + v);
  DirectExec exec;
  auto out = cgm_closest_pair(exec, pts, v);
  EXPECT_DOUBLE_EQ(out.best.dist2, brute_closest2(pts));
  // The reported pair must actually realize the distance.
  const auto& a = pts[out.best.tag_a];
  const auto& b = pts[out.best.tag_b];
  const double dx = a.x - b.x, dy = a.y - b.y;
  EXPECT_DOUBLE_EQ(dx * dx + dy * dy, out.best.dist2);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ClosestPairSweep,
    ::testing::Values(std::pair<std::size_t, std::uint32_t>{2, 1},
                      std::pair<std::size_t, std::uint32_t>{10, 4},
                      std::pair<std::size_t, std::uint32_t>{100, 8},
                      std::pair<std::size_t, std::uint32_t>{600, 16}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "v" +
             std::to_string(info.param.second);
    });

TEST(ClosestPair, ClusteredPoints) {
  // Two tight clusters far apart; the answer lives inside one cluster and
  // must survive the strip exchange.
  std::vector<util::Point2D> pts;
  util::Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    pts.push_back({0.1 + rng.uniform01() * 1e-3, rng.uniform01()});
  }
  for (int i = 0; i < 50; ++i) {
    pts.push_back({0.9 + rng.uniform01() * 1e-3, rng.uniform01()});
  }
  DirectExec exec;
  auto out = cgm_closest_pair(exec, pts, 8);
  EXPECT_DOUBLE_EQ(out.best.dist2, brute_closest2(pts));
}

TEST(ClosestPair, OnEmMachines) {
  auto pts = util::random_points_2d(400, 12);
  const double want = brute_closest2(pts);
  SeqEmExec seq(em_config(1, 2, 256));
  EXPECT_DOUBLE_EQ(cgm_closest_pair(seq, pts, 8).best.dist2, want);
  ParEmExec par(em_config(4, 2, 256));
  EXPECT_DOUBLE_EQ(cgm_closest_pair(par, pts, 8).best.dist2, want);
}

// --- convex hull ---------------------------------------------------------------

bool point_in_hull(const std::vector<util::Point2D>& hull, double px,
                   double py) {
  // CCW hull: point is inside iff it is left of (or on) every edge.
  const std::size_t h = hull.size();
  for (std::size_t i = 0; i < h; ++i) {
    const auto& a = hull[i];
    const auto& b = hull[(i + 1) % h];
    const double cr = (b.x - a.x) * (py - a.y) - (b.y - a.y) * (px - a.x);
    if (cr < -1e-12) return false;
  }
  return true;
}

TEST(ConvexHull, ContainsAllPointsAndIsConvex) {
  auto pts = util::random_points_2d(500, 13);
  DirectExec exec;
  auto out = cgm_convex_hull(exec, pts, 8);
  ASSERT_GE(out.hull.size(), 3u);
  for (const auto& p : pts) {
    EXPECT_TRUE(point_in_hull(out.hull, p.x, p.y));
  }
  // Hull vertices are input points.
  for (std::size_t i = 0; i < out.hull.size(); ++i) {
    const auto& orig = pts[out.hull_tags[i]];
    EXPECT_DOUBLE_EQ(out.hull[i].x, orig.x);
    EXPECT_DOUBLE_EQ(out.hull[i].y, orig.y);
  }
}

TEST(ConvexHull, MatchesSequentialMonotoneChain) {
  auto pts = util::random_points_2d(300, 14);
  std::vector<HullPoint> hp;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    hp.push_back({pts[i].x, pts[i].y, i});
  }
  std::sort(hp.begin(), hp.end(), HullPointLess{});
  auto want = monotone_chain(hp);
  std::vector<std::uint64_t> want_tags;
  for (const auto& h : want) want_tags.push_back(h.tag);
  std::sort(want_tags.begin(), want_tags.end());

  DirectExec exec;
  auto out = cgm_convex_hull(exec, pts, 8);
  auto got_tags = out.hull_tags;
  std::sort(got_tags.begin(), got_tags.end());
  EXPECT_EQ(got_tags, want_tags);
}

TEST(ConvexHull, SmallInputs) {
  DirectExec exec;
  std::vector<util::Point2D> tri{{0, 0}, {1, 0}, {0.5, 1}};
  auto out = cgm_convex_hull(exec, tri, 4);
  EXPECT_EQ(out.hull.size(), 3u);
  std::vector<util::Point2D> two{{0, 0}, {1, 1}};
  EXPECT_EQ(cgm_convex_hull(exec, two, 2).hull.size(), 2u);
}

TEST(ConvexHull, OnEmMachines) {
  auto pts = util::random_points_2d(400, 15);
  DirectExec dexec;
  auto want = cgm_convex_hull(dexec, pts, 8).hull_tags;
  SeqEmExec seq(em_config(1, 4, 256));
  EXPECT_EQ(cgm_convex_hull(seq, pts, 8).hull_tags, want);
  ParEmExec par(em_config(2, 2, 256));
  EXPECT_EQ(cgm_convex_hull(par, pts, 8).hull_tags, want);
}

// --- lower envelope -------------------------------------------------------------

TEST(Envelope, MergePicksLowerFunction) {
  // Two disjoint flat segments at different heights over the same span.
  std::vector<EnvPiece> low{{0, 1, 10, 1, 0}};
  std::vector<EnvPiece> high{{2, 5, 8, 5, 1}};
  auto merged = merge_envelopes(low, high);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].seg, 0u);
}

TEST(Envelope, PartialOverlap) {
  std::vector<EnvPiece> a{{0, 2, 4, 2, 0}};   // flat y=2 on [0,4]
  std::vector<EnvPiece> b{{2, 1, 6, 1, 1}};   // flat y=1 on [2,6]
  auto merged = merge_envelopes(a, b);
  EXPECT_DOUBLE_EQ(envelope_eval(merged, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(envelope_eval(merged, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(envelope_eval(merged, 5.0), 1.0);
  EXPECT_TRUE(std::isinf(envelope_eval(merged, 7.0)));
}

double brute_envelope(std::span<const util::Segment2D> segs, double x) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& s : segs) {
    if (x < s.x1 || x > s.x2) continue;
    const double t = (x - s.x1) / (s.x2 - s.x1);
    best = std::min(best, s.y1 + t * (s.y2 - s.y1));
  }
  return best;
}

class EnvelopeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(EnvelopeSweep, MatchesBruteForceSampling) {
  const auto [n, v] = GetParam();
  auto segs = util::random_disjoint_segments(n, 41 * n + v);
  DirectExec exec;
  auto out = cgm_lower_envelope(exec, segs, v);
  for (int i = 0; i <= 200; ++i) {
    const double x = i / 200.0;
    const double want = brute_envelope(segs, x);
    const double got = envelope_eval(out.envelope, x);
    if (std::isinf(want)) {
      EXPECT_TRUE(std::isinf(got)) << "x=" << x;
    } else {
      EXPECT_NEAR(got, want, 1e-9) << "x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EnvelopeSweep,
    ::testing::Values(std::pair<std::size_t, std::uint32_t>{1, 1},
                      std::pair<std::size_t, std::uint32_t>{20, 4},
                      std::pair<std::size_t, std::uint32_t>{100, 8},
                      std::pair<std::size_t, std::uint32_t>{300, 16}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "v" +
             std::to_string(info.param.second);
    });

TEST(EnvelopeGeneral, CrossingSegmentsSplitPieces) {
  // Two segments forming an X: the envelope takes each on one side.
  std::vector<util::Segment2D> segs{{0, 0, 2, 2}, {0, 2, 2, 0}};
  auto env = build_envelope(segs, 0);
  EXPECT_NEAR(envelope_eval(env, 0.25), 0.25, 1e-12);  // rising segment low
  EXPECT_NEAR(envelope_eval(env, 1.75), 0.25, 1e-12);  // falling segment low
  EXPECT_NEAR(envelope_eval(env, 1.0), 1.0, 1e-12);    // crossing point
}

class EnvelopeGeneralSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(EnvelopeGeneralSweep, MatchesBruteForceSampling) {
  const auto [n, v] = GetParam();
  auto segs = util::random_segments(n, 71 * n + v);
  DirectExec exec;
  auto out = cgm_lower_envelope_general(exec, segs, v);
  for (int i = 0; i <= 300; ++i) {
    const double x = i / 300.0;
    const double want = brute_envelope(segs, x);
    const double got = envelope_eval(out.envelope, x);
    if (std::isinf(want)) {
      EXPECT_TRUE(std::isinf(got)) << "x=" << x;
    } else {
      EXPECT_NEAR(got, want, 1e-9) << "x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EnvelopeGeneralSweep,
    ::testing::Values(std::pair<std::size_t, std::uint32_t>{2, 1},
                      std::pair<std::size_t, std::uint32_t>{25, 4},
                      std::pair<std::size_t, std::uint32_t>{120, 8}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "v" +
             std::to_string(info.param.second);
    });

TEST(EnvelopeGeneral, OnEmMachine) {
  auto segs = util::random_segments(100, 72);
  SeqEmExec exec(em_config(1, 2, 256));
  auto out = cgm_lower_envelope_general(exec, segs, 8);
  for (int i = 0; i <= 60; ++i) {
    const double x = i / 60.0;
    const double want = brute_envelope(segs, x);
    if (!std::isinf(want)) {
      EXPECT_NEAR(envelope_eval(out.envelope, x), want, 1e-9);
    }
  }
}

TEST(EnvelopeLocate, AnswersMatchSequentialEval) {
  auto segs = util::random_disjoint_segments(120, 61);
  DirectExec exec;
  auto env = cgm_lower_envelope(exec, segs, 8);
  std::vector<double> queries;
  for (int i = 0; i <= 150; ++i) queries.push_back(i / 150.0);
  queries.push_back(-0.5);  // before the envelope
  queries.push_back(1.5);   // after the envelope
  auto out = cgm_envelope_locate(exec, env.envelope, queries, 8);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double want = envelope_eval(env.envelope, queries[i]);
    if (std::isinf(want)) {
      EXPECT_EQ(out.answers[i].has, 0) << "x=" << queries[i];
    } else {
      ASSERT_EQ(out.answers[i].has, 1) << "x=" << queries[i];
      EXPECT_NEAR(out.answers[i].y, want, 1e-9);
      // The reported segment must actually attain that height.
      const auto& seg = segs[out.answers[i].seg];
      const double t = (queries[i] - seg.x1) / (seg.x2 - seg.x1);
      EXPECT_NEAR(seg.y1 + t * (seg.y2 - seg.y1), want, 1e-9);
    }
  }
  EXPECT_EQ(out.exec.lambda, 4u);
}

TEST(EnvelopeLocate, OnEmMachine) {
  auto segs = util::random_disjoint_segments(80, 62);
  SeqEmExec exec(em_config(1, 2, 256));
  auto env = cgm_lower_envelope(exec, segs, 8);
  std::vector<double> queries{0.1, 0.33, 0.5, 0.77, 0.99};
  auto out = cgm_envelope_locate(exec, env.envelope, queries, 8);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double want = envelope_eval(env.envelope, queries[i]);
    if (!std::isinf(want)) {
      ASSERT_EQ(out.answers[i].has, 1);
      EXPECT_NEAR(out.answers[i].y, want, 1e-9);
    }
  }
}

TEST(Envelope, OnEmMachines) {
  auto segs = util::random_disjoint_segments(150, 16);
  SeqEmExec seq(em_config(1, 2, 256));
  auto out = cgm_lower_envelope(seq, segs, 8);
  for (int i = 0; i <= 50; ++i) {
    const double x = i / 50.0;
    const double want = brute_envelope(segs, x);
    if (!std::isinf(want)) {
      EXPECT_NEAR(envelope_eval(out.envelope, x), want, 1e-9);
    }
  }
}

}  // namespace
}  // namespace embsp::cgm
