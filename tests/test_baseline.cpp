#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baseline/em_list_ranking.hpp"
#include "baseline/em_mergesort.hpp"
#include "baseline/em_permutation.hpp"
#include "baseline/em_transpose.hpp"
#include "baseline/naive_sim.hpp"
#include "bsp/direct_runtime.hpp"
#include "test_programs.hpp"
#include "util/rng.hpp"
#include "util/workloads.hpp"

namespace embsp::baseline {
namespace {

TEST(EmMergesort, SortsRandomKeys) {
  em::DiskArray disks(4, 128);
  auto keys = util::random_keys(5000, 1);
  EmSortStats st;
  auto sorted = em_mergesort(disks, keys, 4096, &st);
  auto want = keys;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(sorted, want);
  EXPECT_GT(st.initial_runs, 1u);
  EXPECT_GE(st.merge_passes, 1u);
}

TEST(EmMergesort, SingleRunNoMergePass) {
  em::DiskArray disks(2, 128);
  auto keys = util::random_keys(100, 2);
  EmSortStats st;
  auto sorted = em_mergesort(disks, keys, 1 << 16, &st);
  auto want = keys;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(sorted, want);
  EXPECT_EQ(st.initial_runs, 1u);
  EXPECT_EQ(st.merge_passes, 0u);
}

TEST(EmMergesort, EdgeCases) {
  em::DiskArray disks(2, 128);
  EXPECT_TRUE(em_mergesort(disks, {}, 4096).empty());
  std::vector<std::uint64_t> one{42};
  EXPECT_EQ(em_mergesort(disks, one, 4096), one);
  std::vector<std::uint64_t> dup(777, 9);
  EXPECT_EQ(em_mergesort(disks, dup, 4096), dup);
}

TEST(EmMergesort, MultiplePassesWhenMemoryTiny) {
  em::DiskArray disks(1, 64);
  auto keys = util::random_keys(4000, 3);
  EmSortStats st;
  auto sorted = em_mergesort(disks, keys, 512, &st);  // 8 items/block, 64 item memory
  auto want = keys;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(sorted, want);
  EXPECT_GT(st.merge_passes, 1u);
}

TEST(EmMergesort, DiskParallelismExploited) {
  // With D=8 the forecasting merge should use most disk slots per I/O.
  em::DiskArray disks(8, 128);
  auto keys = util::random_keys(20000, 4);
  EmSortStats st;
  em_mergesort(disks, keys, 1 << 14, &st);
  const auto io = st.algorithm_io();
  EXPECT_GT(io.utilization(8), 0.5);
}

TEST(EmMergesort, IoMatchesPrediction) {
  em::DiskArray disks(4, 128);
  auto keys = util::random_keys(30000, 5);
  EmSortStats st;
  em_mergesort(disks, keys, 1 << 13, &st);
  const double predicted = em_sort_predicted_ios(30000, 1 << 13, 4, 128);
  const double measured = static_cast<double>(st.algorithm_io().parallel_ios);
  EXPECT_GT(measured, 0.3 * predicted);
  EXPECT_LT(measured, 3.0 * predicted);
}

TEST(EmPermutation, NaiveCorrect) {
  em::DiskArray disks(2, 128);
  const std::size_t n = 500;
  auto values = util::random_keys(n, 6);
  auto perm = util::random_permutation(n, 7);
  auto out = em_permute_naive(disks, values, perm, 4096);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[perm[i]], values[i]);
}

TEST(EmPermutation, SortBasedCorrect) {
  em::DiskArray disks(4, 128);
  const std::size_t n = 3000;
  auto values = util::random_keys(n, 8);
  auto perm = util::random_permutation(n, 9);
  auto out = em_permute_sort(disks, values, perm, 8192);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[perm[i]], values[i]);
}

TEST(EmPermutation, NaiveCostsFarMoreThanSort) {
  // The Table 1 min(n/D, sort) tradeoff: for large n relative to B, the
  // naive per-record strategy performs ~2 I/Os per record while the sort
  // does ~2 passes over n/B blocks.
  const std::size_t n = 4000;
  auto values = util::random_keys(n, 10);
  auto perm = util::random_permutation(n, 11);
  em::DiskArray d1(2, 256), d2(2, 256);
  EmPermStats naive_st, sort_st;
  em_permute_naive(d1, values, perm, 8192, &naive_st);
  em_permute_sort(d2, values, perm, 8192, &sort_st);
  EXPECT_GT(naive_st.algorithm.parallel_ios,
            5 * sort_st.algorithm.parallel_ios);
}

TEST(EmTranspose, CorrectAndBlocked) {
  em::DiskArray disks(2, 128);  // 16 items per block
  const std::uint64_t r = 64, c = 48;
  auto m = util::random_keys(r * c, 12);
  EmTransposeStats st;
  auto out = em_transpose(disks, m, r, c, 1 << 14, &st);
  for (std::uint64_t i = 0; i < r; ++i) {
    for (std::uint64_t j = 0; j < c; ++j) {
      EXPECT_EQ(out[j * r + i], m[i * c + j]);
    }
  }
  EXPECT_GE(st.tile, 16u);
}

TEST(EmTranspose, RejectsUnalignedShapes) {
  em::DiskArray disks(2, 128);
  std::vector<std::uint64_t> m(30);
  EXPECT_THROW(em_transpose(disks, m, 5, 6, 4096), std::invalid_argument);
}

TEST(EmListRanking, RanksRandomList) {
  em::DiskArray disks(2, 128);
  const std::size_t n = 500;
  auto [succ, head] = util::random_list(n, 13);
  EmListRankStats st;
  auto rank = em_list_ranking(disks, succ, 8192, &st);
  // Reference: walk the list.
  std::vector<std::uint64_t> want(n);
  std::uint64_t cur = head;
  for (std::size_t d = 0; d < n; ++d) {
    want[cur] = n - 1 - d;
    cur = succ[cur];
  }
  EXPECT_EQ(rank, want);
  EXPECT_EQ(st.rounds, 9u);  // ceil(log2 500)
  EXPECT_GT(st.total.parallel_ios, 0u);
}

TEST(EmListRanking, TinyLists) {
  em::DiskArray disks(1, 64);
  std::vector<std::uint64_t> self{0};
  EXPECT_EQ(em_list_ranking(disks, self, 2048),
            std::vector<std::uint64_t>{0});
  std::vector<std::uint64_t> two{1, 1};
  auto r = em_list_ranking(disks, two, 2048);
  EXPECT_EQ(r[0], 1u);
  EXPECT_EQ(r[1], 0u);
}

TEST(NaiveSim, MatchesDirectRuntime) {
  using embsp::testing::PrefixSumProgram;
  PrefixSumProgram prog;
  constexpr std::uint32_t v = 8;
  auto make = [](std::uint32_t pid) {
    PrefixSumProgram::State s;
    s.value = pid * 2 + 1;
    return s;
  };
  std::vector<std::uint64_t> direct(v), naive(v);
  bsp::DirectRuntime rt;
  rt.run<PrefixSumProgram>(prog, v, make,
                           [&](std::uint32_t pid, PrefixSumProgram::State& s) {
                             direct[pid] = s.prefix;
                           });
  NaiveSimConfig cfg;
  cfg.v = v;
  cfg.D = 2;
  cfg.B = 64;
  cfg.mu = 64;
  cfg.cell_bytes = 256;
  NaiveSimulator sim(cfg);
  auto result = sim.run<PrefixSumProgram>(
      prog, make, [&](std::uint32_t pid, PrefixSumProgram::State& s) {
        naive[pid] = s.prefix;
      });
  EXPECT_EQ(naive, direct);
  EXPECT_EQ(result.lambda, 2u);
}

TEST(NaiveSim, NeverUsesDiskParallelism) {
  using embsp::testing::IrregularProgram;
  IrregularProgram prog;
  NaiveSimConfig cfg;
  cfg.v = 6;
  cfg.D = 4;
  cfg.B = 64;
  cfg.mu = 64;
  cfg.cell_bytes = 2048;
  NaiveSimulator sim(cfg);
  sim.run<IrregularProgram>(
      prog, [](std::uint32_t) { return IrregularProgram::State{}; },
      [](std::uint32_t, IrregularProgram::State&) {});
  // Every I/O touches exactly one of the 4 disks.
  EXPECT_DOUBLE_EQ(sim.disks().stats().utilization(4), 0.25);
}

TEST(NaiveSim, DenseCellMatrixDominatesIo) {
  // Even a program with almost no traffic pays v^2 cell reads per
  // superstep — the overhead the paper's technique removes.
  using embsp::testing::EmptyMessageProgram;
  EmptyMessageProgram prog;
  NaiveSimConfig cfg;
  cfg.v = 16;
  cfg.D = 1;
  cfg.B = 64;
  cfg.mu = 64;
  cfg.cell_bytes = 64;
  NaiveSimulator sim(cfg);
  auto result = sim.run<EmptyMessageProgram>(
      prog, [](std::uint32_t) { return EmptyMessageProgram::State{}; },
      [](std::uint32_t, EmptyMessageProgram::State&) {});
  // 2 supersteps x 16 processors x 16 cell reads = 512 reads minimum.
  EXPECT_GE(result.total_io.blocks_read, 512u);
}

TEST(NaiveSim, CellOverflowDiagnosed) {
  using embsp::testing::BigMessageProgram;
  BigMessageProgram prog;
  prog.words = 4096;  // 32 KB message vs 256-byte cells
  NaiveSimConfig cfg;
  cfg.v = 4;
  cfg.D = 1;
  cfg.B = 64;
  cfg.mu = 64;
  cfg.cell_bytes = 256;
  NaiveSimulator sim(cfg);
  EXPECT_THROW(sim.run<BigMessageProgram>(
                   prog,
                   [](std::uint32_t) { return BigMessageProgram::State{}; },
                   [](std::uint32_t, BigMessageProgram::State&) {}),
               std::runtime_error);
}

TEST(EmMergesortKv, SortsPairsByKeyThenValue) {
  em::DiskArray disks(2, 128);
  std::vector<KeyValue> input;
  util::Rng rng(91);
  for (int i = 0; i < 3000; ++i) {
    input.push_back(KeyValue{rng.below(100), rng.next()});
  }
  auto sorted = em_mergesort_kv(disks, input, 4096);
  ASSERT_EQ(sorted.size(), input.size());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const bool ordered =
        sorted[i - 1].key < sorted[i].key ||
        (sorted[i - 1].key == sorted[i].key &&
         sorted[i - 1].value <= sorted[i].value);
    EXPECT_TRUE(ordered) << "at " << i;
  }
}

TEST(EmMergesortKv, EmptyAndSingleton) {
  em::DiskArray disks(1, 128);
  EXPECT_TRUE(em_mergesort_kv(disks, {}, 4096).empty());
  std::vector<KeyValue> one{KeyValue{5, 9}};
  auto sorted = em_mergesort_kv(disks, one, 4096);
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted[0].key, 5u);
  EXPECT_EQ(sorted[0].value, 9u);
}

}  // namespace
}  // namespace embsp::baseline
