// Layout planner tests: parity of the extracted planner against the
// arithmetic that used to live inline in the simulators, the typed
// LayoutError bound diagnostics, the multi-level (hierarchical) group
// schedule's equivalence with the flat schedule, and auto-tuning.
#include <gtest/gtest.h>

#include "bsp/direct_runtime.hpp"
#include "net/transport.hpp"
#include "obs/span.hpp"
#include "sim/dist_simulator.hpp"
#include "sim/par_simulator.hpp"
#include "sim/seq_simulator.hpp"
#include "test_programs.hpp"

namespace embsp::sim {
namespace {

using embsp::testing::IrregularProgram;
using embsp::testing::PrefixSumProgram;

SimConfig layout_config(std::uint32_t v, std::size_t D, std::size_t B,
                        std::size_t M, std::size_t mu, std::size_t gamma,
                        std::size_t k = 0) {
  SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = v;
  cfg.machine.em.D = D;
  cfg.machine.em.B = B;
  cfg.machine.em.M = M;
  cfg.mu = mu;
  cfg.gamma = gamma;
  cfg.k = k;
  return cfg;
}

// --- parity with the pre-extraction arithmetic -------------------------------

/// Independent copy of the SimLayout::compute arithmetic the three
/// simulators carried inline before the planner was extracted.  Kept
/// deliberately verbatim (not calling any planner helper) so the parity
/// test pins the extraction, not itself.
struct LegacyLayout {
  std::size_t k = 0;
  std::uint32_t num_groups = 0;
  std::uint64_t group_capacity = 0;
  std::size_t context_slot_bytes = 0;
  std::uint64_t routing_mem_budget = 0;
  bool rejected = false;  ///< legacy code threw for this config
};

LegacyLayout legacy_compute(const SimConfig& cfg, std::uint32_t local_v) {
  const auto& em = cfg.machine.em;
  LegacyLayout out;
  const std::size_t slot = ((cfg.mu + 4 + em.B - 1) / em.B) * em.B;
  const std::size_t resident = cfg.pipeline ? 2 : 1;
  out.context_slot_bytes = slot;
  if (cfg.k != 0 && cfg.k * slot * resident > em.M) {
    out.rejected = true;
    return out;
  }
  std::size_t k =
      cfg.k != 0 ? cfg.k
                 : std::max<std::size_t>(1, (em.M / resident) / slot);
  if (cfg.k == 0 && local_v >= em.D) {
    k = std::min<std::size_t>(k, local_v / em.D);
  }
  k = std::min<std::size_t>(k, local_v);
  k = std::max<std::size_t>(k, 1);
  out.k = k;
  out.num_groups = static_cast<std::uint32_t>((local_v + k - 1) / k);
  const std::size_t payload = em.B - kBlockHeaderBytes;
  const std::size_t usable =
      payload > 2 * kChunkHeaderBytes ? payload - 2 * kChunkHeaderBytes : 1;
  out.group_capacity =
      (static_cast<std::uint64_t>(k) * cfg.gamma + usable - 1) / usable +
      out.num_groups + 1;
  const std::uint64_t ctx = static_cast<std::uint64_t>(resident) * k * slot;
  out.routing_mem_budget = em.M > ctx ? em.M - ctx : 0;
  return out;
}

TEST(LayoutPlanner, FlatParityWithLegacyArithmetic) {
  // Grid: the configurations the executor tests use, across explicit and
  // auto k, pipelined and not, and p = 1..4 (local_v = v / p).
  const SimConfig grid[] = {
      layout_config(16, 4, 128, 1 << 16, 64, 600),
      layout_config(16, 4, 128, 1024, 124, 256, 8),
      layout_config(64, 8, 512, 1 << 22, 128, 4096),
      layout_config(64, 4, 512, 1 << 22, 128, 4096, 5),
      layout_config(12, 4, 128, 8 * (64 + 128), 64, 4096),
      layout_config(8, 2, 128, 1 << 20, 2048, 4096, 3),
      layout_config(32, 2, 128, 1024, 124, 1024, 16),
      layout_config(6, 2, 64, 1 << 12, 32, 256),
  };
  for (const SimConfig& base : grid) {
    for (const bool pipe : {false, true}) {
      for (std::uint32_t p = 1; p <= 4; ++p) {
        SimConfig cfg = base;
        cfg.pipeline = pipe;
        const auto local_v =
            std::max<std::uint32_t>(1, cfg.machine.bsp.v / p);
        const LegacyLayout want = legacy_compute(cfg, local_v);
        SCOPED_TRACE("v=" + std::to_string(cfg.machine.bsp.v) +
                     " M=" + std::to_string(cfg.machine.em.M) +
                     " k=" + std::to_string(cfg.k) +
                     " pipe=" + std::to_string(pipe) +
                     " local_v=" + std::to_string(local_v));
        if (want.rejected) {
          EXPECT_THROW(LayoutPlanner::flat(cfg, local_v), LayoutError);
          continue;
        }
        const SimLayout got = LayoutPlanner::flat(cfg, local_v);
        EXPECT_EQ(got.k, want.k);
        EXPECT_EQ(got.num_groups, want.num_groups);
        EXPECT_EQ(got.group_capacity, want.group_capacity);
        EXPECT_EQ(got.context_slot_bytes, want.context_slot_bytes);
        EXPECT_EQ(got.routing_mem_budget, want.routing_mem_budget);
        // And the full planner agrees with flat() whenever flat fits.
        const LayoutPlan plan = LayoutPlanner::plan(cfg, local_v);
        if (!plan.hierarchical()) {
          EXPECT_EQ(plan.leaf.k, got.k);
          EXPECT_EQ(plan.leaf.num_groups, got.num_groups);
          EXPECT_EQ(plan.leaf.group_capacity, got.group_capacity);
          EXPECT_EQ(plan.leaf.routing_mem_budget, got.routing_mem_budget);
          ASSERT_EQ(plan.levels.size(), 1u);
          EXPECT_EQ(plan.levels[0].k, got.k);
        }
      }
    }
  }
}

// --- typed bound errors ------------------------------------------------------

TEST(LayoutPlanner, SlotOverMIsTypedAcrossSimulators) {
  // One context slot (mu rounded to blocks) larger than M: no group size —
  // and no number of grouping levels — can fit, so every simulator's run
  // path must surface the typed bound error, catchable as em::IoError.
  auto cfg = layout_config(8, 2, 128, 1024, 2048, 4096);
  const auto state = [](std::uint32_t) { return PrefixSumProgram::State{}; };
  const auto sink = [](std::uint32_t, PrefixSumProgram::State&) {};
  PrefixSumProgram prog;

  EXPECT_THROW(SimLayout::compute(cfg, 8), LayoutError);
  EXPECT_THROW(LayoutPlanner::plan(cfg, 8), LayoutError);
  try {
    LayoutPlanner::plan(cfg, 8);
    FAIL() << "plan accepted slot > M";
  } catch (const em::IoError& e) {  // family-typed, message names the bound
    EXPECT_NE(std::string(e.what()).find("memory bound M"),
              std::string::npos);
  }

  {
    SeqSimulator sim(cfg);
    EXPECT_THROW(sim.run<PrefixSumProgram>(prog, state, sink), LayoutError);
  }
  {
    ParSimulator sim(cfg);
    EXPECT_THROW(sim.run<PrefixSumProgram>(prog, state, sink), LayoutError);
  }
  {
    auto eps = net::make_loopback_group(1);
    DistSimulator sim(cfg, *eps[0]);
    EXPECT_THROW(sim.run<PrefixSumProgram>(prog, state, sink), LayoutError);
  }
}

TEST(LayoutPlanner, ZeroLocalProcessorsIsTypedError) {
  // A rank hosting no virtual processors would drive k to 0; the planner
  // names the bound instead of dividing by zero downstream.
  const auto cfg = layout_config(8, 2, 128, 1 << 16, 64, 600);
  EXPECT_THROW(LayoutPlanner::flat(cfg, 0), LayoutError);
  EXPECT_THROW(LayoutPlanner::plan(cfg, 0), LayoutError);
}

// --- multi-level plans -------------------------------------------------------

TEST(LayoutPlanner, TwoLevelPlanShape) {
  // slot = 128, M = 1024 -> at most 8 contexts resident; k = 16 needs a
  // two-level schedule: leaves of 8, super-groups of 2 leaves.
  auto cfg = layout_config(32, 2, 128, 1024, 124, 1024, 16);
  EXPECT_THROW(LayoutPlanner::flat(cfg, 32), LayoutError);
  const LayoutPlan plan = LayoutPlanner::plan(cfg, 32);
  ASSERT_TRUE(plan.hierarchical());
  ASSERT_EQ(plan.levels.size(), 2u);
  EXPECT_EQ(plan.levels[0].k, 8u);
  EXPECT_EQ(plan.levels[0].num_groups, 4u);
  EXPECT_EQ(plan.levels[1].k, 16u);
  EXPECT_EQ(plan.levels[1].num_groups, 2u);
  EXPECT_EQ(plan.fanout(), 2u);
  EXPECT_GT(plan.super_capacity_blocks, plan.leaf.group_capacity);
  EXPECT_GT(plan.leaf_capacity_blocks, 0u);
  // Every level's resident context set respects the memory bound.
  EXPECT_LE(plan.leaf.k * plan.leaf.context_slot_bytes, cfg.machine.em.M);
}

template <typename Prog>
std::vector<std::vector<std::byte>> run_seq_states(const Prog& prog,
                                                   const SimConfig& cfg,
                                                   SimResult& result) {
  using State = typename Prog::State;
  std::vector<std::vector<std::byte>> states(cfg.machine.bsp.v);
  SeqSimulator sim(cfg);
  result = sim.run<Prog>(
      prog, [](std::uint32_t) { return State{}; },
      [&](std::uint32_t pid, State& s) {
        util::Writer w;
        s.serialize(w);
        states[pid] = w.take();
      });
  return states;
}

TEST(MultiLevel, MatchesFlatSchedule) {
  // Same machine, same program: k = 8 runs the flat schedule, k = 16 the
  // two-level one.  Results and BSP-level costs must be identical; only
  // the I/O schedule (the distribution pass) differs.
  IrregularProgram prog;
  auto flat_cfg = layout_config(32, 2, 128, 1024, 124, 4096, 8);
  auto hier_cfg = flat_cfg;
  hier_cfg.k = 16;
  ASSERT_FALSE(LayoutPlanner::plan(flat_cfg, 32).hierarchical());
  ASSERT_TRUE(LayoutPlanner::plan(hier_cfg, 32).hierarchical());

  SimResult flat_res, hier_res;
  const auto flat_states = run_seq_states(prog, flat_cfg, flat_res);
  const auto hier_states = run_seq_states(prog, hier_cfg, hier_res);
  EXPECT_EQ(flat_states, hier_states);
  ASSERT_EQ(flat_res.costs.supersteps.size(),
            hier_res.costs.supersteps.size());
  for (std::size_t s = 0; s < flat_res.costs.supersteps.size(); ++s) {
    EXPECT_EQ(flat_res.costs.supersteps[s].max_bytes_sent,
              hier_res.costs.supersteps[s].max_bytes_sent);
    EXPECT_EQ(flat_res.costs.supersteps[s].total_bytes,
              hier_res.costs.supersteps[s].total_bytes);
  }
  // The distribution pass ran (and only under the two-level schedule).
  EXPECT_EQ(flat_res.routing_stats.distribute_cycles, 0u);
  EXPECT_GT(hier_res.routing_stats.distribute_cycles, 0u);
}

TEST(MultiLevel, DeterministicAcrossRunsUnderFaults) {
  // Two identical two-level runs with injected transient faults must agree
  // on results AND on the injected-fault tally — the fault schedule is
  // call-indexed, so equality pins the whole I/O call sequence, scratch
  // distribution included.
  IrregularProgram prog;
  auto cfg = layout_config(32, 2, 128, 1024, 124, 4096, 16);
  cfg.faults.seed = 7;
  cfg.faults.read_error_rate = 0.02;
  cfg.faults.write_error_rate = 0.02;
  cfg.block_checksums = true;
  ASSERT_TRUE(LayoutPlanner::plan(cfg, 32).hierarchical());

  SimResult res[2];
  const auto a = run_seq_states(prog, cfg, res[0]);
  const auto b = run_seq_states(prog, cfg, res[1]);
  EXPECT_EQ(a, b);
  EXPECT_EQ(res[0].recovery.faults.read_errors,
            res[1].recovery.faults.read_errors);
  EXPECT_EQ(res[0].recovery.faults.write_errors,
            res[1].recovery.faults.write_errors);
  EXPECT_EQ(res[0].recovery.io_retries, res[1].recovery.io_retries);
  EXPECT_GT(res[0].recovery.faults.read_errors +
                res[0].recovery.faults.write_errors,
            0u);
  EXPECT_EQ(res[0].routing_stats.distribute_cycles,
            res[1].routing_stats.distribute_cycles);
}

TEST(MultiLevel, PipelinedMatchesSerialSchedule) {
  IrregularProgram prog;
  auto cfg = layout_config(32, 2, 128, 1024, 124, 4096, 16);
  ASSERT_TRUE(LayoutPlanner::plan(cfg, 32).hierarchical());
  SimResult serial_res, pipe_res;
  const auto serial = run_seq_states(prog, cfg, serial_res);

  auto pcfg = cfg;
  pcfg.pipeline = true;
  pcfg.io_engine = em::IoEngine::parallel;
  pcfg.compute_threads = 2;
  ASSERT_TRUE(LayoutPlanner::plan(pcfg, 32).hierarchical());
  const auto piped = run_seq_states(prog, pcfg, pipe_res);
  EXPECT_EQ(serial, piped);
  EXPECT_GT(pipe_res.routing_stats.distribute_cycles, 0u);
}

TEST(MultiLevel, OversizedInputRunsToCompletion) {
  // v * slot = 32 KiB = 8 * M: the flat schedule rejects k = 32 outright
  // (32 contexts can never be resident under M = 4 KiB), but the
  // two-level schedule stages super-groups of 4 leaf groups through
  // scratch and completes, matching the direct runtime bit for bit.
  PrefixSumProgram prog;
  auto cfg = layout_config(64, 4, 512, 4096, 508, 4096, 32);
  ASSERT_GT(std::uint64_t{64} * 512, 4 * cfg.machine.em.M);
  EXPECT_THROW(LayoutPlanner::flat(cfg, 64), LayoutError);
  const LayoutPlan plan = LayoutPlanner::plan(cfg, 64);
  ASSERT_TRUE(plan.hierarchical());
  EXPECT_EQ(plan.levels[0].k, 8u);
  EXPECT_EQ(plan.fanout(), 4u);

  const auto make_state = [](std::uint32_t pid) {
    PrefixSumProgram::State s;
    s.value = pid * 5 + 3;
    return s;
  };
  std::vector<std::uint64_t> direct(64), simulated(64);
  bsp::DirectRuntime rt;
  rt.run<PrefixSumProgram>(prog, 64, make_state,
                           [&](std::uint32_t pid, PrefixSumProgram::State& s) {
                             direct[pid] = s.prefix;
                           });
  SeqSimulator sim(cfg);
  SimResult res = sim.run<PrefixSumProgram>(
      prog, make_state, [&](std::uint32_t pid, PrefixSumProgram::State& s) {
        simulated[pid] = s.prefix;
      });
  EXPECT_EQ(direct, simulated);
  EXPECT_GT(res.routing_stats.distribute_cycles, 0u);
}

TEST(MultiLevel, RejectsRecoveryComposition) {
  // Superstep recovery / checkpointing do not compose with the two-level
  // schedule yet; the simulator must say so up front, not corrupt state.
  IrregularProgram prog;
  auto cfg = layout_config(32, 2, 128, 1024, 124, 4096, 16);
  cfg.superstep_recovery = true;
  SeqSimulator sim(cfg);
  EXPECT_THROW(sim.run<IrregularProgram>(
                   prog, [](std::uint32_t) { return IrregularProgram::State{}; },
                   [](std::uint32_t, IrregularProgram::State&) {}),
               LayoutError);
}

// --- auto-tuning -------------------------------------------------------------

TEST(AutoTune, SameResultsWithPlanExported) {
  IrregularProgram prog;
  auto cfg = layout_config(16, 4, 128, 1 << 16, 64, 4096);
  SimResult plain_res;
  const auto plain = run_seq_states(prog, cfg, plain_res);

  obs::Recorder rec;
  auto tuned_cfg = cfg;
  tuned_cfg.auto_tune = true;
  tuned_cfg.recorder = &rec;
  SimResult tuned_res;
  const auto tuned = run_seq_states(prog, tuned_cfg, tuned_res);

  EXPECT_EQ(plain, tuned);
  EXPECT_EQ(plain_res.lambda(), tuned_res.lambda());
  const auto& reg = rec.registry;
  EXPECT_DOUBLE_EQ(reg.gauge("sim.layout.auto_tuned"), 1.0);
  EXPECT_GE(reg.gauge("sim.layout.k"), 1.0);
  EXPECT_GE(reg.gauge("sim.layout.num_groups"), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.layout.levels"), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.layout.fanout"), 1.0);
  EXPECT_GE(reg.gauge("sim.layout.group_capacity_blocks"), 1.0);
  EXPECT_GE(reg.gauge("sim.layout.context_slot_bytes"), 128.0);
}

TEST(AutoTune, PipelinedAdaptsComputeWidthWithoutChangingResults) {
  IrregularProgram prog;
  auto cfg = layout_config(16, 4, 128, 1 << 16, 64, 4096);
  SimResult plain_res;
  const auto plain = run_seq_states(prog, cfg, plain_res);

  obs::Recorder rec;
  auto tuned_cfg = cfg;
  tuned_cfg.auto_tune = true;
  tuned_cfg.pipeline = true;
  tuned_cfg.io_engine = em::IoEngine::parallel;
  tuned_cfg.recorder = &rec;
  SimResult tuned_res;
  const auto tuned = run_seq_states(prog, tuned_cfg, tuned_res);

  EXPECT_EQ(plain, tuned);
  // apply_auto_tune widened the pool, and the tuner exported its state.
  EXPECT_GE(rec.registry.gauge("sim.layout.compute_width"), 1.0);
  EXPECT_GE(rec.registry.gauge("sim.layout.replans"), 0.0);
}

TEST(GroupTuner, AdaptsToStallFraction) {
  GroupTuner tuner(1, 8);
  em::EngineStats stats;
  stats.per_disk.resize(2);

  // Superstep 1: issuer stalled for most of the busiest disk's service
  // time -> I/O bound -> shed a thread.
  stats.per_disk[0].busy_ns = 1000;
  stats.per_disk[1].busy_ns = 800;
  stats.stall_ns = 900;
  EXPECT_EQ(tuner.recommend(stats, 4), 3u);

  // Superstep 2: barely any new stall -> compute bound -> widen.
  stats.per_disk[0].busy_ns = 2000;
  stats.stall_ns = 910;
  EXPECT_EQ(tuner.recommend(stats, 3), 4u);

  // Superstep 3: moderate stall -> hold.
  stats.per_disk[0].busy_ns = 3000;
  stats.stall_ns = 1210;
  EXPECT_EQ(tuner.recommend(stats, 4), 4u);
  EXPECT_EQ(tuner.replans(), 2u);

  // The min bound holds even when the signal says shed.
  stats.per_disk[0].busy_ns = 4000;
  stats.stall_ns = 2200;  // ~all of this superstep's service time stalled
  EXPECT_EQ(tuner.recommend(stats, 1), 1u);
  EXPECT_EQ(tuner.replans(), 2u);
}

}  // namespace
}  // namespace embsp::sim
