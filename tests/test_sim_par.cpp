#include <gtest/gtest.h>

#include "bsp/direct_runtime.hpp"
#include "sim/par_simulator.hpp"
#include "test_programs.hpp"

namespace embsp::sim {
namespace {

using embsp::testing::BigMessageProgram;
using embsp::testing::EmptyMessageProgram;
using embsp::testing::IrregularProgram;
using embsp::testing::PrefixSumProgram;
using embsp::testing::RingProgram;

SimConfig par_config(std::uint32_t p, std::uint32_t v, std::size_t D,
                     std::size_t B, std::size_t mu, std::size_t gamma) {
  SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.bsp.v = v;
  cfg.machine.em.D = D;
  cfg.machine.em.B = B;
  cfg.machine.em.M = std::max<std::size_t>(D * B, 8 * (mu + B));
  cfg.mu = mu;
  cfg.gamma = gamma;
  return cfg;
}

template <bsp::Program P>
void expect_equivalent(const P& prog, SimConfig cfg,
                       const std::function<typename P::State(std::uint32_t)>&
                           make_state) {
  using State = typename P::State;
  const std::uint32_t v = cfg.machine.bsp.v;
  std::vector<std::vector<std::byte>> direct_states(v), sim_states(v);

  bsp::DirectRuntime rt;
  auto direct = rt.run<P>(prog, v, make_state,
                          [&](std::uint32_t pid, State& s) {
                            util::Writer w;
                            s.serialize(w);
                            direct_states[pid] = w.take();
                          });

  ParSimulator sim(cfg);
  auto result = sim.run<P>(prog, make_state, [&](std::uint32_t pid, State& s) {
    util::Writer w;
    s.serialize(w);
    sim_states[pid] = w.take();
  });

  for (std::uint32_t i = 0; i < v; ++i) {
    EXPECT_EQ(direct_states[i], sim_states[i]) << "processor " << i;
  }
  EXPECT_EQ(result.lambda(), direct.lambda());
}

TEST(ParSimulator, PrefixSumTwoProcs) {
  PrefixSumProgram prog;
  expect_equivalent(prog, par_config(2, 16, 2, 128, 64, 600),
                    [](std::uint32_t pid) {
                      PrefixSumProgram::State s;
                      s.value = pid + 1;
                      return s;
                    });
}

TEST(ParSimulator, PrefixSumFourProcs) {
  PrefixSumProgram prog;
  expect_equivalent(prog, par_config(4, 32, 2, 128, 64, 1400),
                    [](std::uint32_t pid) {
                      PrefixSumProgram::State s;
                      s.value = pid * 5 + 2;
                      return s;
                    });
}

TEST(ParSimulator, RingAcrossProcessors) {
  RingProgram prog;
  prog.rounds = 6;
  expect_equivalent(prog, par_config(4, 8, 2, 128, 2048, 4096),
                    [](std::uint32_t pid) {
                      RingProgram::State s;
                      s.data = {pid};
                      return s;
                    });
}

TEST(ParSimulator, IrregularTraffic) {
  IrregularProgram prog;
  expect_equivalent(prog, par_config(3, 12, 2, 128, 64, 4096),
                    [](std::uint32_t) { return IrregularProgram::State{}; });
}

TEST(ParSimulator, EmptyMessages) {
  EmptyMessageProgram prog;
  expect_equivalent(prog, par_config(2, 6, 2, 64, 32, 256),
                    [](std::uint32_t) { return EmptyMessageProgram::State{}; });
}

TEST(ParSimulator, BigMessageCrossesProcessors) {
  BigMessageProgram prog;
  prog.words = 1500;
  expect_equivalent(prog, par_config(2, 4, 2, 128, 64, 14000),
                    [](std::uint32_t) { return BigMessageProgram::State{}; });
}

TEST(ParSimulator, SingleProcessorDegenerate) {
  // p = 1 through the parallel code path must agree with the direct runtime.
  PrefixSumProgram prog;
  expect_equivalent(prog, par_config(1, 8, 2, 128, 64, 400),
                    [](std::uint32_t pid) {
                      PrefixSumProgram::State s;
                      s.value = pid;
                      return s;
                    });
}

TEST(ParSimulator, DeterministicAcrossRuns) {
  IrregularProgram prog;
  auto cfg = par_config(3, 12, 2, 128, 64, 4096);
  std::vector<std::uint64_t> sums[2];
  for (int run = 0; run < 2; ++run) {
    ParSimulator sim(cfg);
    sim.run<IrregularProgram>(
        prog, [](std::uint32_t) { return IrregularProgram::State{}; },
        [&](std::uint32_t, IrregularProgram::State& s) {
          sums[run].push_back(s.checksum);
        });
  }
  EXPECT_EQ(sums[0], sums[1]);
}

TEST(ParSimulator, ErrorInProgramPropagates) {
  struct ThrowingProgram {
    struct State {
      void serialize(util::Writer&) const {}
      void deserialize(util::Reader&) {}
    };
    bool superstep(std::size_t, const bsp::ProcEnv& env, State&,
                   const bsp::Inbox&, bsp::Outbox&) const {
      if (env.pid == 3) throw std::runtime_error("boom");
      return false;
    }
  };
  ThrowingProgram prog;
  ParSimulator sim(par_config(2, 8, 2, 128, 64, 256));
  EXPECT_THROW(sim.run<ThrowingProgram>(
                   prog, [](std::uint32_t) { return ThrowingProgram::State{}; },
                   [](std::uint32_t, ThrowingProgram::State&) {}),
               std::runtime_error);
}

TEST(ParSimulator, PerProcessorIoBalanced) {
  // The randomized scatter should spread message I/O roughly evenly across
  // the real processors.
  IrregularProgram prog;
  prog.rounds = 4;
  auto cfg = par_config(4, 32, 2, 128, 64, 8192);
  ParSimulator sim(cfg);
  auto result = sim.run<IrregularProgram>(
      prog, [](std::uint32_t) { return IrregularProgram::State{}; },
      [](std::uint32_t, IrregularProgram::State&) {});
  ASSERT_EQ(result.per_proc_io.size(), 4u);
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& io : result.per_proc_io) {
    lo = std::min(lo, io.parallel_ios);
    hi = std::max(hi, io.parallel_ios);
  }
  EXPECT_LT(static_cast<double>(hi), 3.0 * static_cast<double>(lo) + 64.0);
}

TEST(ParSimulator, RealCommunicationMetered) {
  PrefixSumProgram prog;
  auto cfg = par_config(4, 16, 2, 128, 64, 600);
  ParSimulator sim(cfg);
  auto result = sim.run<PrefixSumProgram>(
      prog,
      [](std::uint32_t pid) {
        PrefixSumProgram::State s;
        s.value = pid;
        return s;
      },
      [](std::uint32_t, PrefixSumProgram::State&) {});
  // The all-to-all pattern must move real bytes between real processors.
  EXPECT_GT(result.real_comm_bytes, 0u);
}

}  // namespace
}  // namespace embsp::sim
