// Checkpoint/restart and coordinated-recovery tests.
//
// The durability claims under test (see DESIGN.md §"Failure model &
// recovery"):
//   * a checkpoint torn by a crash is detected (checksums) and the
//     previous epoch loads instead — the manifest + atomic-rename protocol
//     never leaves the directory unloadable;
//   * a run killed at an arbitrary point (including SIGKILL-style death
//     with no destructors, simulated by fork + scripted crash faults) and
//     resumed produces byte-identical results, model costs, and fault
//     tallies to an uninterrupted run;
//   * the parallel simulator's coordinated rollback re-executes a failed
//     superstep across ALL processors and still completes with the
//     fault-free answer.
//
// Carries the `recovery` ctest label; the sanitizer presets re-run it.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "em/fault_backend.hpp"
#include "sim/checkpoint.hpp"
#include "sim/par_simulator.hpp"
#include "sim/seq_simulator.hpp"
#include "test_programs.hpp"
#include "util/checksum.hpp"

namespace embsp::sim {
namespace {

namespace fs = std::filesystem;
using embsp::testing::IrregularProgram;

// IrregularProgram plus a cancellation trigger: during superstep
// `cancel_at` the cancel flag is raised, so the simulator stops at the
// following boundary.  With a null flag it is bit-identical to the plain
// program — the same type runs the baseline and the interrupted run.
struct CancelingProgram {
  IrregularProgram inner;
  std::atomic<bool>* flag = nullptr;
  std::size_t cancel_at = 0;

  using State = IrregularProgram::State;

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    if (flag != nullptr && step == cancel_at) {
      flag->store(true, std::memory_order_relaxed);
    }
    return inner.superstep(step, env, s, in, out);
  }
};

std::string fresh_dir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() / ("embsp_ckpt_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

SimConfig base_config(std::uint32_t p, std::uint32_t v, em::IoEngine engine) {
  SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.bsp.v = v;
  cfg.machine.em.D = 4;
  cfg.machine.em.B = 128;
  cfg.machine.em.M = 1 << 20;
  cfg.mu = 64;
  cfg.gamma = 4096;
  cfg.io_engine = engine;
  return cfg;
}

template <typename Sim>
std::vector<std::uint64_t> run_sim(const SimConfig& cfg, SimResult& result,
                                   std::atomic<bool>* flag = nullptr,
                                   std::size_t cancel_at = 0) {
  Sim simr(cfg);
  // Indexed assignment: collect may re-run after recovery; idempotent.
  std::vector<std::uint64_t> sums(cfg.machine.bsp.v);
  result = simr.template run<CancelingProgram>(
      CancelingProgram{{}, flag, cancel_at},
      [](std::uint32_t) { return CancelingProgram::State{}; },
      [&](std::uint32_t vp, CancelingProgram::State& s) {
        sums[vp] = s.checksum;
      });
  return sums;
}

void expect_same_costs(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.lambda(), b.lambda());
  ASSERT_EQ(a.costs.supersteps.size(), b.costs.supersteps.size());
  for (std::size_t i = 0; i < a.costs.supersteps.size(); ++i) {
    EXPECT_EQ(a.costs.supersteps[i].max_work, b.costs.supersteps[i].max_work)
        << "superstep " << i;
    EXPECT_EQ(a.costs.supersteps[i].total_work,
              b.costs.supersteps[i].total_work)
        << "superstep " << i;
    EXPECT_EQ(a.costs.supersteps[i].max_wire_sent,
              b.costs.supersteps[i].max_wire_sent)
        << "superstep " << i;
  }
  EXPECT_EQ(a.total_io.parallel_ios, b.total_io.parallel_ios);
  EXPECT_EQ(a.total_io.blocks_read, b.total_io.blocks_read);
  EXPECT_EQ(a.total_io.blocks_written, b.total_io.blocks_written);
  EXPECT_EQ(a.total_io.bytes_read, b.total_io.bytes_read);
  EXPECT_EQ(a.total_io.bytes_written, b.total_io.bytes_written);
}

// --- CheckpointDir: format, torn files, fallback ----------------------------

std::vector<std::byte> make_payload(std::size_t n, std::uint8_t salt) {
  std::vector<std::byte> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::byte>(static_cast<std::uint8_t>(i * 31 + salt));
  }
  return p;
}

void corrupt_file(const std::string& path, std::size_t at) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  ASSERT_GT(size, at);
  f.seekp(static_cast<std::streamoff>(at));
  char byte = 0;
  f.seekg(static_cast<std::streamoff>(at));
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(at));
  f.write(&byte, 1);
}

TEST(CheckpointDir, PublishLoadRoundtrip) {
  CheckpointDir dir(fresh_dir("roundtrip"));
  const auto p1 = make_payload(1000, 1);
  dir.publish(0, 1, p1, 0xABCD);

  const auto m = dir.manifest();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->run_index, 0u);
  EXPECT_EQ(m->cur_epoch, 1u);
  EXPECT_EQ(m->cur_bytes, p1.size());
  EXPECT_EQ(m->cur_checksum, util::checksum64(p1));
  EXPECT_EQ(m->prev_epoch, 0u);
  EXPECT_EQ(m->config_fp, 0xABCDu);

  const auto loaded = dir.load(0, 0xABCD);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 1u);
  EXPECT_EQ(loaded->payload, p1);

  // A second epoch becomes current; the first is retained as fallback.
  const auto p2 = make_payload(1200, 2);
  dir.publish(0, 2, p2, 0xABCD);
  const auto m2 = dir.manifest();
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->cur_epoch, 2u);
  EXPECT_EQ(m2->prev_epoch, 1u);
  EXPECT_TRUE(fs::exists(dir.epoch_path(0, 1)));

  // A third epoch retires epoch 1 (2-epoch retention).
  dir.publish(0, 3, make_payload(900, 3), 0xABCD);
  EXPECT_FALSE(fs::exists(dir.epoch_path(0, 1)));
  EXPECT_TRUE(fs::exists(dir.epoch_path(0, 2)));
  EXPECT_TRUE(fs::exists(dir.epoch_path(0, 3)));
}

TEST(CheckpointDir, TornManifestReadsAsAbsent) {
  const auto path = fresh_dir("torn_manifest");
  CheckpointDir dir(path);
  dir.publish(0, 1, make_payload(500, 1), 7);
  corrupt_file(path + "/MANIFEST", 40);
  // A manifest that fails its checksum is indistinguishable from no
  // checkpoint at all: the run starts fresh rather than loading garbage.
  EXPECT_FALSE(dir.manifest().has_value());
  EXPECT_FALSE(dir.load(0, 7).has_value());
}

TEST(CheckpointDir, CorruptCurrentEpochFallsBackToPrevious) {
  const auto path = fresh_dir("fallback");
  CheckpointDir dir(path);
  const auto p1 = make_payload(800, 1);
  dir.publish(0, 1, p1, 7);
  dir.publish(0, 2, make_payload(800, 2), 7);
  corrupt_file(dir.epoch_path(0, 2), 100);
  const auto loaded = dir.load(0, 7);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 1u);
  EXPECT_EQ(loaded->payload, p1);
}

TEST(CheckpointDir, CorruptEverythingThrows) {
  const auto path = fresh_dir("all_corrupt");
  CheckpointDir dir(path);
  dir.publish(0, 1, make_payload(600, 1), 7);
  dir.publish(0, 2, make_payload(600, 2), 7);
  corrupt_file(dir.epoch_path(0, 1), 50);
  corrupt_file(dir.epoch_path(0, 2), 50);
  EXPECT_THROW(dir.load(0, 7), std::runtime_error);
}

TEST(CheckpointDir, ConfigFingerprintMismatchThrows) {
  CheckpointDir dir(fresh_dir("fp_mismatch"));
  dir.publish(0, 1, make_payload(100, 1), 7);
  EXPECT_THROW(dir.load(0, 8), std::runtime_error);
}

TEST(CheckpointDir, OtherRunIndexLoadsNothing) {
  CheckpointDir dir(fresh_dir("run_index"));
  dir.publish(1, 4, make_payload(100, 1), 7);
  // Run 0 finished before the checkpointed run 1 started; it re-executes
  // deterministically instead of loading run 1's state.
  EXPECT_FALSE(dir.load(0, 7).has_value());
  EXPECT_TRUE(dir.load(1, 7).has_value());
}

TEST(CheckpointFingerprint, SensitiveToConfigButNotCrashPoints) {
  auto cfg = base_config(1, 16, em::IoEngine::serial);
  const auto fp = config_fingerprint(cfg);
  auto other = cfg;
  other.seed += 1;
  EXPECT_NE(fp, config_fingerprint(other));
  other = cfg;
  other.faults.bursts.push_back({0u, 10u, 4u});
  EXPECT_NE(fp, config_fingerprint(other));
  // A scripted crash point is where the process *dies*, not part of the
  // surviving history — the restart runs without it and must still match.
  other = cfg;
  other.faults.scripted.push_back({em::FaultKind::crash, 0u, 123u});
  EXPECT_EQ(fp, config_fingerprint(other));
}

// --- Sequential simulator: cancel / resume equivalence ----------------------

TEST(SeqResume, CheckpointingItselfChangesNothing) {
  // Checkpoint I/O is off-model (raw backend peeks, no stats, no fault
  // draws): a run with checkpointing enabled is byte-identical to one
  // without.
  auto plain = base_config(1, 16, em::IoEngine::serial);
  SimResult plain_res;
  const auto plain_sums = run_sim<SeqSimulator>(plain, plain_res);

  auto ckpt = plain;
  ckpt.checkpoint.dir = fresh_dir("seq_noop");
  SimResult ckpt_res;
  const auto ckpt_sums = run_sim<SeqSimulator>(ckpt, ckpt_res);

  EXPECT_EQ(plain_sums, ckpt_sums);
  expect_same_costs(plain_res, ckpt_res);
  EXPECT_GT(ckpt_res.recovery.checkpoints, 0u);
  EXPECT_EQ(plain_res.recovery.checkpoints, 0u);
}

void seq_cancel_resume_case(em::IoEngine engine, bool pipeline,
                            std::size_t cancel_at, const std::string& tag) {
  auto cfg = base_config(1, 16, engine);
  if (pipeline) {
    cfg.pipeline = true;
    cfg.compute_threads = 2;
  }
  cfg.checkpoint.dir = fresh_dir(tag + "_base");
  SimResult base_res;
  const auto expected = run_sim<SeqSimulator>(cfg, base_res);

  auto killed = cfg;
  killed.checkpoint.dir = fresh_dir(tag);
  std::atomic<bool> cancel{false};
  killed.cancel = &cancel;
  SimResult dead_res;
  EXPECT_THROW(run_sim<SeqSimulator>(killed, dead_res, &cancel, cancel_at),
               CanceledError);

  auto resumed = cfg;
  resumed.checkpoint.dir = killed.checkpoint.dir;
  resumed.checkpoint.resume = true;
  SimResult res;
  const auto got = run_sim<SeqSimulator>(resumed, res);
  EXPECT_EQ(got, expected) << tag;
  expect_same_costs(base_res, res);
  EXPECT_EQ(res.recovery.resume_epoch, cancel_at + 1);
}

TEST(SeqResume, CancelAtFirstBoundaryThenResume) {
  seq_cancel_resume_case(em::IoEngine::serial, false, 0, "seq_first");
}

TEST(SeqResume, CancelMidRunThenResume) {
  seq_cancel_resume_case(em::IoEngine::serial, false, 2, "seq_mid");
}

TEST(SeqResume, ResumeUnderUringPipeline) {
  seq_cancel_resume_case(em::IoEngine::uring, true, 1, "seq_uring_pipe");
}

TEST(SeqResume, CheckpointEveryNSkipsBoundaries) {
  auto cfg = base_config(1, 16, em::IoEngine::serial);
  cfg.checkpoint.dir = fresh_dir("seq_every");
  cfg.checkpoint.every = 2;
  SimResult res;
  run_sim<SeqSimulator>(cfg, res);
  SimResult dense_res;
  auto dense = cfg;
  dense.checkpoint.dir = fresh_dir("seq_every_dense");
  dense.checkpoint.every = 1;
  run_sim<SeqSimulator>(dense, dense_res);
  EXPECT_GT(res.recovery.checkpoints, 0u);
  EXPECT_LT(res.recovery.checkpoints, dense_res.recovery.checkpoints);
}

TEST(SeqResume, FaultHistoryContinuesAcrossResume) {
  // The fault schedule is part of the run's identity: a resumed run's
  // injected-fault tally, retry count, and results must all match an
  // uninterrupted run under the same schedule (ScheduleState round-trip).
  auto cfg = base_config(1, 16, em::IoEngine::serial);
  cfg.faults.seed = 2024;
  cfg.faults.read_error_rate = 0.02;
  cfg.faults.write_error_rate = 0.02;
  cfg.faults.torn_write_rate = 0.01;
  cfg.faults.bit_flip_rate = 0.01;
  cfg.block_checksums = true;
  cfg.superstep_recovery = true;
  cfg.checkpoint.dir = fresh_dir("seq_faulty_base");

  SimResult base_res;
  const auto expected = run_sim<SeqSimulator>(cfg, base_res);
  ASSERT_GT(base_res.recovery.faults.total(), 0u);

  auto killed = cfg;
  killed.checkpoint.dir = fresh_dir("seq_faulty");
  std::atomic<bool> cancel{false};
  killed.cancel = &cancel;
  SimResult dead_res;
  EXPECT_THROW(run_sim<SeqSimulator>(killed, dead_res, &cancel, 1),
               CanceledError);

  auto resumed = killed;
  resumed.cancel = nullptr;
  resumed.checkpoint.resume = true;
  SimResult res;
  const auto got = run_sim<SeqSimulator>(resumed, res);
  EXPECT_EQ(got, expected);
  expect_same_costs(base_res, res);
  EXPECT_EQ(res.recovery.faults.total(), base_res.recovery.faults.total());
  EXPECT_EQ(res.recovery.faults.read_errors,
            base_res.recovery.faults.read_errors);
  EXPECT_EQ(res.recovery.faults.torn_writes,
            base_res.recovery.faults.torn_writes);
  EXPECT_EQ(res.recovery.io_retries, base_res.recovery.io_retries);
}

TEST(SeqResume, MultiRunWorkloadResumesInterruptedRunOnly) {
  // Workloads like euler_tour run several simulations through one
  // executor; the manifest's run_index makes a resumed process re-execute
  // completed runs fresh and resume only the interrupted one.
  auto cfg0 = base_config(1, 16, em::IoEngine::serial);
  cfg0.checkpoint.run_index = 0;
  auto cfg1 = cfg0;
  cfg1.seed = cfg0.seed + 99;
  cfg1.checkpoint.run_index = 1;

  SimResult base0, base1;
  const auto expected0 = run_sim<SeqSimulator>(cfg0, base0);
  const auto expected1 = run_sim<SeqSimulator>(cfg1, base1);

  // Interrupted process: run 0 completes (checkpointing), run 1 canceled.
  const auto dir = fresh_dir("seq_multirun");
  auto k0 = cfg0;
  k0.checkpoint.dir = dir;
  SimResult r0;
  EXPECT_EQ(run_sim<SeqSimulator>(k0, r0), expected0);
  auto k1 = cfg1;
  k1.checkpoint.dir = dir;
  std::atomic<bool> cancel{false};
  k1.cancel = &cancel;
  SimResult rdead;
  EXPECT_THROW(run_sim<SeqSimulator>(k1, rdead, &cancel, 1), CanceledError);

  // Restarted process replays run 0 (manifest belongs to run 1, so run 0
  // starts fresh with checkpoint writes suppressed) then resumes run 1.
  auto re0 = k0;
  re0.checkpoint.resume = true;
  SimResult rr0;
  EXPECT_EQ(run_sim<SeqSimulator>(re0, rr0), expected0);
  EXPECT_EQ(rr0.recovery.resume_epoch, 0u);
  EXPECT_EQ(rr0.recovery.checkpoints, 0u);  // suppressed: run 1 owns the dir

  auto re1 = k1;
  re1.cancel = nullptr;
  re1.checkpoint.resume = true;
  SimResult rr1;
  EXPECT_EQ(run_sim<SeqSimulator>(re1, rr1), expected1);
  EXPECT_GT(rr1.recovery.resume_epoch, 0u);
  expect_same_costs(base1, rr1);
}

// --- SIGKILL-style death: fork + scripted crash fault -----------------------

TEST(CrashRestart, KillNineMidRunThenResumeMatches) {
  auto cfg = base_config(1, 16, em::IoEngine::serial);
  SimResult base_res;
  const auto expected = run_sim<SeqSimulator>(cfg, base_res);
  const std::uint64_t disk0_calls =
      (base_res.total_io.blocks_read + base_res.total_io.blocks_written) / 4;
  ASSERT_GT(disk0_calls, 8u);

  const auto dir = fresh_dir("crash_kill9");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: same run, checkpointing on, process dies without warning at
    // backend call #N of disk 0 — std::_Exit, no destructors, no flushes.
    auto doomed = cfg;
    doomed.checkpoint.dir = dir;
    doomed.faults.scripted.push_back(
        {em::FaultKind::crash, 0u, disk0_calls / 2});
    SimResult r;
    try {
      run_sim<SeqSimulator>(doomed, r);
    } catch (...) {
    }
    std::_Exit(0);  // reached only if the crash point never fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137) << "child should die at the crash point";

  // Parent: resume from the orphaned checkpoint directory.  The in-memory
  // disks died with the child — everything must come from stable storage.
  auto resumed = cfg;
  resumed.checkpoint.dir = dir;
  resumed.checkpoint.resume = true;
  SimResult res;
  const auto got = run_sim<SeqSimulator>(resumed, res);
  EXPECT_EQ(got, expected);
  expect_same_costs(base_res, res);
  EXPECT_GT(res.recovery.resume_epoch, 0u);
}

// --- Parallel simulator: resume + coordinated rollback ----------------------

void par_cancel_resume_case(em::IoEngine engine, bool recovery,
                            const std::string& tag) {
  auto cfg = base_config(2, 16, engine);
  cfg.superstep_recovery = recovery;
  cfg.checkpoint.dir = fresh_dir(tag + "_base");
  SimResult base_res;
  const auto expected = run_sim<ParSimulator>(cfg, base_res);

  auto killed = cfg;
  killed.checkpoint.dir = fresh_dir(tag);
  std::atomic<bool> cancel{false};
  killed.cancel = &cancel;
  SimResult dead_res;
  EXPECT_THROW(run_sim<ParSimulator>(killed, dead_res, &cancel, 1),
               CanceledError);

  auto resumed = cfg;
  resumed.checkpoint.dir = killed.checkpoint.dir;
  resumed.checkpoint.resume = true;
  SimResult res;
  const auto got = run_sim<ParSimulator>(resumed, res);
  EXPECT_EQ(got, expected) << tag;
  expect_same_costs(base_res, res);
  EXPECT_GT(res.recovery.resume_epoch, 0u);
}

TEST(ParResume, CancelThenResumeParallelEngine) {
  par_cancel_resume_case(em::IoEngine::parallel, false, "par_plain");
}

TEST(ParResume, CancelThenResumeWithJournaledContexts) {
  par_cancel_resume_case(em::IoEngine::parallel, true, "par_journal");
}

TEST(ParResume, CancelThenResumeUring) {
  par_cancel_resume_case(em::IoEngine::uring, false, "par_uring");
}

void par_rollback_case(em::IoEngine engine, const std::string& tag) {
  // Clean reference: coordinated recovery on (journaled banks change the
  // disk layout, so the reference must run the same layout).
  auto clean = base_config(2, 16, engine);
  clean.superstep_recovery = true;
  clean.block_checksums = true;
  SimResult clean_res;
  const auto expected = run_sim<ParSimulator>(clean, clean_res);

  // Hostile run: a burst longer than the retry budget on proc 0's disk 0,
  // placed mid-run.  The giveup must trigger a rollback of ALL processors
  // to the last committed epoch, then a successful re-execution.
  const std::uint64_t proc0_calls =
      (clean_res.per_proc_io[0].blocks_read +
       clean_res.per_proc_io[0].blocks_written) /
      4;
  ASSERT_GT(proc0_calls, 8u) << tag;
  auto hostile = clean;
  hostile.faults.seed = 5;
  hostile.faults.bursts.push_back(
      {0u, proc0_calls / 2,
       static_cast<std::uint64_t>(hostile.retry.max_attempts)});
  SimResult res;
  const auto got = run_sim<ParSimulator>(hostile, res);
  EXPECT_EQ(got, expected) << tag;
  EXPECT_EQ(res.recovery.io_giveups, 1u) << tag;
  EXPECT_GE(res.recovery.total_rollbacks(), 1u) << tag;
}

TEST(ParRecovery, CoordinatedRollbackCompletesParallelEngine) {
  par_rollback_case(em::IoEngine::parallel, "rollback_parallel");
}

TEST(ParRecovery, CoordinatedRollbackCompletesUring) {
  par_rollback_case(em::IoEngine::uring, "rollback_uring");
}

TEST(ParRecovery, RetryBudgetExhaustionStillSurfacesError) {
  // A fault that outlives every rollback attempt must abort the run with
  // the underlying IoError — bounded retries, no hang, no silent loss.
  auto cfg = base_config(2, 16, em::IoEngine::parallel);
  cfg.superstep_recovery = true;
  cfg.block_checksums = true;
  cfg.max_superstep_retries = 1;
  cfg.faults.seed = 5;
  cfg.faults.bursts.push_back({0u, 8u, 100000u});  // effectively forever
  SimResult res;
  EXPECT_THROW(run_sim<ParSimulator>(cfg, res), em::IoError);
}

TEST(ParRecovery, AbortStillFlushesRegistry) {
  // Satellite: a run that dies mid-flight must still leave its counters in
  // the attached registry (that is when a post-mortem needs them).
  auto cfg = base_config(2, 16, em::IoEngine::parallel);
  cfg.superstep_recovery = false;  // no rollback: the giveup is fatal
  cfg.faults.seed = 5;
  cfg.faults.bursts.push_back({0u, 8u, 100000u});
  obs::Recorder recorder;
  cfg.recorder = &recorder;
  SimResult res;
  EXPECT_THROW(run_sim<ParSimulator>(cfg, res), em::IoError);
  std::ostringstream json;
  recorder.registry.write_json(json);
  EXPECT_NE(json.str().find("recovery.io_giveups"), std::string::npos);
  EXPECT_NE(json.str().find("faults.injected"), std::string::npos);
}

TEST(ParCheckpoint, CheckpointingItselfChangesNothing) {
  auto plain = base_config(2, 16, em::IoEngine::parallel);
  SimResult plain_res;
  const auto plain_sums = run_sim<ParSimulator>(plain, plain_res);

  auto ckpt = plain;
  ckpt.checkpoint.dir = fresh_dir("par_noop");
  SimResult ckpt_res;
  const auto ckpt_sums = run_sim<ParSimulator>(ckpt, ckpt_res);

  EXPECT_EQ(plain_sums, ckpt_sums);
  expect_same_costs(plain_res, ckpt_res);
  EXPECT_GT(ckpt_res.recovery.checkpoints, 0u);
}

TEST(ObsHooks, CheckpointCountersExported) {
  auto cfg = base_config(1, 16, em::IoEngine::serial);
  cfg.checkpoint.dir = fresh_dir("obs_gauges");
  obs::Recorder recorder;
  cfg.recorder = &recorder;
  SimResult res;
  run_sim<SeqSimulator>(cfg, res);
  std::ostringstream json;
  recorder.registry.write_json(json);
  EXPECT_NE(json.str().find("recovery.checkpoints"), std::string::npos);
  EXPECT_NE(json.str().find("checkpoint.bytes"), std::string::npos);
  EXPECT_NE(json.str().find("checkpoint.latency_ns"), std::string::npos);
}

}  // namespace
}  // namespace embsp::sim
