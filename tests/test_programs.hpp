// Small BSP* programs shared by the executor tests.  Each exercises a
// different communication shape so the simulators' transport (block
// cutting, bucket placement, routing, reassembly) is stressed broadly.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "bsp/program.hpp"

namespace embsp::testing {

/// All-to-all prefix sum: superstep 0 every processor sends its value to
/// every higher-numbered processor, superstep 1 sums the received values.
/// Result: state.prefix == sum of values of processors < pid.
struct PrefixSumProgram {
  struct State {
    std::uint64_t value = 0;
    std::uint64_t prefix = 0;
    void serialize(util::Writer& w) const {
      w.write(value);
      w.write(prefix);
    }
    void deserialize(util::Reader& r) {
      value = r.read<std::uint64_t>();
      prefix = r.read<std::uint64_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    if (step == 0) {
      for (std::uint32_t q = env.pid + 1; q < env.nprocs; ++q) {
        out.send_value(q, s.value);
      }
      env.charge(env.nprocs - env.pid);
      return true;
    }
    s.prefix = 0;
    for (std::size_t i = 0; i < in.count(); ++i) {
      s.prefix += in.value<std::uint64_t>(i);
    }
    env.charge(in.count());
    return false;
  }
};

/// Ring rotation for `rounds` supersteps: each processor passes a growing
/// payload vector to its right neighbour.  Exercises multi-superstep
/// context persistence and messages larger than one block.
struct RingProgram {
  std::size_t rounds = 4;
  std::size_t payload_words = 64;

  struct State {
    std::vector<std::uint64_t> data;
    void serialize(util::Writer& w) const { w.write_vector(data); }
    void deserialize(util::Reader& r) {
      data = r.read_vector<std::uint64_t>();
    }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    if (step > 0) {
      s.data = in.vector<std::uint64_t>(0);
      s.data.push_back(env.pid);
    }
    if (step < rounds) {
      out.send_vector((env.pid + 1) % env.nprocs, s.data);
      return true;
    }
    return false;
  }
};

/// Random-looking irregular traffic: processor i sends (i*7+s) % v messages
/// of varying size each superstep; receivers checksum everything.  The
/// final checksum is order-independent, so it validates exactly-once
/// delivery under randomized transports.
struct IrregularProgram {
  std::size_t rounds = 3;

  struct State {
    std::uint64_t checksum = 0;
    void serialize(util::Writer& w) const { w.write(checksum); }
    void deserialize(util::Reader& r) { checksum = r.read<std::uint64_t>(); }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    for (std::size_t i = 0; i < in.count(); ++i) {
      const auto& m = in.all()[i];
      std::uint64_t h = 1469598103934665603ULL;
      for (auto b : m.payload) {
        h = (h ^ static_cast<std::uint64_t>(b)) * 1099511628211ULL;
      }
      s.checksum += h + m.src;
    }
    if (step < rounds) {
      const std::size_t fanout = (env.pid * 7 + step) % env.nprocs;
      for (std::size_t j = 0; j < fanout; ++j) {
        const auto dst =
            static_cast<std::uint32_t>((env.pid + j * j + 1) % env.nprocs);
        std::vector<std::uint8_t> bytes((env.pid + j) % 97 + 1);
        for (std::size_t x = 0; x < bytes.size(); ++x) {
          bytes[x] = static_cast<std::uint8_t>(env.pid + j + x);
        }
        out.send(dst, std::as_bytes(std::span<const std::uint8_t>(bytes)));
      }
      return true;
    }
    return false;
  }
};

/// Sends zero-length messages — a degenerate case for the block format.
struct EmptyMessageProgram {
  struct State {
    std::uint64_t received = 0;
    void serialize(util::Writer& w) const { w.write(received); }
    void deserialize(util::Reader& r) { received = r.read<std::uint64_t>(); }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    if (step == 0) {
      out.send(static_cast<std::uint32_t>((env.pid + 1) % env.nprocs), {});
      out.send(static_cast<std::uint32_t>((env.pid + 2) % env.nprocs), {});
      return true;
    }
    s.received = in.count();
    return false;
  }
};

/// One huge message (many blocks) from processor 0 to the last processor.
struct BigMessageProgram {
  std::size_t words = 4096;

  struct State {
    std::uint64_t sum = 0;
    void serialize(util::Writer& w) const { w.write(sum); }
    void deserialize(util::Reader& r) { sum = r.read<std::uint64_t>(); }
  };

  bool superstep(std::size_t step, const bsp::ProcEnv& env, State& s,
                 const bsp::Inbox& in, bsp::Outbox& out) const {
    if (step == 0) {
      if (env.pid == 0) {
        std::vector<std::uint64_t> data(words);
        std::iota(data.begin(), data.end(), std::uint64_t{1});
        out.send_vector(env.nprocs - 1, data);
      }
      return true;
    }
    if (env.pid == env.nprocs - 1) {
      const auto data = in.vector<std::uint64_t>(0);
      for (auto x : data) s.sum += x;
    }
    return false;
  }
};

}  // namespace embsp::testing
