// Property-style sweeps across the whole simulation stack.
//
// The central invariant of the paper's technique is *transport
// transparency*: a BSP* program computes the same thing no matter which
// executor runs it and no matter how the EM machine is shaped.  These
// tests sweep machine shapes x routing modes x programs and assert
// bit-identical results, plus structural properties of the layouts and
// the analytic tail bounds.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "bsp/direct_runtime.hpp"
#include "sim/context_store.hpp"
#include "sim/par_simulator.hpp"
#include "sim/seq_simulator.hpp"
#include "sim/tail_bounds.hpp"
#include "test_programs.hpp"

namespace embsp::sim {
namespace {

using embsp::testing::IrregularProgram;
using embsp::testing::PrefixSumProgram;
using embsp::testing::RingProgram;

struct Shape {
  std::uint32_t p;
  std::uint32_t v;
  std::size_t D;
  std::size_t B;
  std::size_t k;  // 0 = auto
  RoutingMode mode;
};

class ExecutorEquivalence : public ::testing::TestWithParam<Shape> {};

template <bsp::Program P>
std::vector<std::vector<std::byte>> run_and_serialize(
    const P& prog, const Shape& shape,
    const std::function<typename P::State(std::uint32_t)>& make_state) {
  using State = typename P::State;
  std::vector<std::vector<std::byte>> states(shape.v);
  auto collect = [&](std::uint32_t pid, State& s) {
    util::Writer w;
    s.serialize(w);
    states[pid] = w.take();
  };
  SimConfig cfg;
  cfg.machine.p = shape.p;
  cfg.machine.bsp.v = shape.v;
  cfg.machine.em.D = shape.D;
  cfg.machine.em.B = shape.B;
  cfg.machine.em.M = 1 << 20;
  cfg.k = shape.k;
  cfg.routing = shape.mode;
  cfg.mu = 4096;
  cfg.gamma = 1 << 16;
  if (shape.p == 1) {
    SeqSimulator sim(cfg);
    sim.run<P>(prog, make_state, collect);
  } else {
    ParSimulator sim(cfg);
    sim.run<P>(prog, make_state, collect);
  }
  return states;
}

TEST_P(ExecutorEquivalence, IrregularTrafficMatchesDirect) {
  const auto shape = GetParam();
  IrregularProgram prog;
  auto make = [](std::uint32_t) { return IrregularProgram::State{}; };

  std::vector<std::vector<std::byte>> direct(shape.v);
  bsp::DirectRuntime rt;
  rt.run<IrregularProgram>(prog, shape.v, make,
                           [&](std::uint32_t pid, IrregularProgram::State& s) {
                             util::Writer w;
                             s.serialize(w);
                             direct[pid] = w.take();
                           });
  EXPECT_EQ(run_and_serialize(prog, shape, make), direct);
}

TEST_P(ExecutorEquivalence, RingMatchesDirect) {
  const auto shape = GetParam();
  RingProgram prog;
  prog.rounds = 4;
  auto make = [](std::uint32_t pid) {
    RingProgram::State s;
    s.data = {pid, pid * 3};
    return s;
  };
  std::vector<std::vector<std::byte>> direct(shape.v);
  bsp::DirectRuntime rt;
  rt.run<RingProgram>(prog, shape.v, make,
                      [&](std::uint32_t pid, RingProgram::State& s) {
                        util::Writer w;
                        s.serialize(w);
                        direct[pid] = w.take();
                      });
  EXPECT_EQ(run_and_serialize(prog, shape, make), direct);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExecutorEquivalence,
    ::testing::Values(
        Shape{1, 12, 1, 128, 0, RoutingMode::compact},
        Shape{1, 12, 3, 128, 0, RoutingMode::compact},
        Shape{1, 12, 3, 128, 0, RoutingMode::padded},
        Shape{1, 12, 3, 128, 0, RoutingMode::deterministic},
        Shape{1, 12, 8, 64, 1, RoutingMode::compact},
        Shape{1, 24, 4, 256, 3, RoutingMode::compact},
        Shape{2, 12, 2, 128, 0, RoutingMode::compact},
        Shape{3, 12, 2, 128, 0, RoutingMode::padded},
        Shape{4, 12, 1, 128, 0, RoutingMode::deterministic},
        Shape{4, 24, 4, 64, 2, RoutingMode::compact},
        Shape{6, 12, 2, 128, 0, RoutingMode::compact}),
    [](const auto& info) {
      const auto& s = info.param;
      const char* mode = s.mode == RoutingMode::compact ? "compact"
                         : s.mode == RoutingMode::padded ? "padded"
                                                         : "determ";
      return "p" + std::to_string(s.p) + "v" + std::to_string(s.v) + "D" +
             std::to_string(s.D) + "B" + std::to_string(s.B) + "k" +
             std::to_string(s.k) + mode;
    });

// --- layout bijections -------------------------------------------------------

TEST(LayoutProperties, ContextStorePlacementIsInjective) {
  for (std::size_t D : {1u, 3u, 4u, 7u}) {
    em::DiskArray disks(D, 64);
    em::TrackAllocators alloc(D);
    ContextStore store(disks, alloc, 20, 300);  // multi-block contexts
    std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
    for (std::uint32_t ctx = 0; ctx < 20; ++ctx) {
      for (std::uint64_t b = 0; b < store.blocks_per_context(); ++b) {
        EXPECT_TRUE(seen.insert(store.location(ctx, b)).second)
            << "collision D=" << D << " ctx=" << ctx << " block=" << b;
      }
    }
  }
}

TEST(LayoutProperties, ContextRotationSpreadsSmallContexts) {
  // With one used block per context, consecutive contexts must map to
  // different disks (the rotation that keeps partial reads parallel).
  em::DiskArray disks(4, 64);
  em::TrackAllocators alloc(4);
  ContextStore store(disks, alloc, 16, 300);
  std::set<std::uint32_t> disks_hit;
  for (std::uint32_t ctx = 0; ctx < 4; ++ctx) {
    disks_hit.insert(store.location(ctx, 0).first);
  }
  EXPECT_EQ(disks_hit.size(), 4u);
}

TEST(LayoutProperties, StripedRegionLocationIsInjective) {
  em::DiskArray disks(5, 32);
  em::TrackAllocators alloc(5);
  auto r1 = em::StripedRegion::reserve(disks, alloc, 23);
  auto r2 = em::StripedRegion::reserve(disks, alloc, 17);
  std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
  for (std::uint64_t g = 0; g < 23; ++g) {
    EXPECT_TRUE(seen.insert(r1.location(g)).second);
  }
  for (std::uint64_t g = 0; g < 17; ++g) {
    EXPECT_TRUE(seen.insert(r2.location(g)).second)
        << "regions overlap at block " << g;
  }
}

// --- analytic tail bounds ----------------------------------------------------

TEST(TailBounds, Lemma2Monotonicity) {
  // Larger overload factor l and larger bucket R both shrink the tail.
  for (double R : {32.0, 128.0, 1024.0}) {
    double prev = 1.0;
    for (double l : {1.1, 1.5, 2.0, 3.0}) {
      const double p = lemma2_tail(l, R, 8.0);
      EXPECT_LE(p, prev + 1e-12);
      prev = p;
    }
  }
  EXPECT_LE(lemma2_tail(2.0, 1024, 8), lemma2_tail(2.0, 128, 8));
}

TEST(TailBounds, Lemma2Boundaries) {
  EXPECT_DOUBLE_EQ(lemma2_tail(1.0, 100, 4), 1.0);   // l <= 1: vacuous
  EXPECT_DOUBLE_EQ(lemma2_tail(0.5, 100, 4), 1.0);
  EXPECT_GT(lemma2_tail(1.5, 100, 4), 0.0);
  EXPECT_LT(lemma2_tail(4.0, 1000, 4), 1e-50);
}

TEST(TailBounds, Lemma10ShrinksWithLoad) {
  const double p1 = lemma10_tail(4.0, 1000, 10);
  const double p2 = lemma10_tail(4.0, 10000, 10);
  EXPECT_LT(p2, p1);
  EXPECT_LE(lemma10_tail(8.0, 1000, 10), lemma10_tail(4.0, 1000, 10));
}

TEST(TailBounds, Lemma9Hoeffding) {
  EXPECT_DOUBLE_EQ(lemma9_tail(8.0, 100, 1), std::exp(-800.0));
  EXPECT_LE(lemma9_tail(8.0, 100, 10), 1.0);
}

// --- file-backed simulation ---------------------------------------------------

TEST(FileBackedSimulation, MatchesMemoryBacked) {
  IrregularProgram prog;
  auto make = [](std::uint32_t) { return IrregularProgram::State{}; };
  SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = 10;
  cfg.machine.em = {1 << 18, 3, 128, 1.0};
  cfg.mu = 64;
  cfg.gamma = 1 << 14;

  std::vector<std::uint64_t> mem_sums, file_sums;
  {
    SeqSimulator sim(cfg);
    sim.run<IrregularProgram>(
        prog, make, [&](std::uint32_t, IrregularProgram::State& s) {
          mem_sums.push_back(s.checksum);
        });
  }
  const auto dir =
      std::filesystem::temp_directory_path() / "embsp_test_filesim";
  std::filesystem::create_directories(dir);
  {
    SeqSimulator sim(cfg, [dir](std::size_t d) {
      return em::make_file_backend(
          (dir / ("d" + std::to_string(d) + ".bin")).string());
    });
    sim.run<IrregularProgram>(
        prog, make, [&](std::uint32_t, IrregularProgram::State& s) {
          file_sums.push_back(s.checksum);
        });
  }
  std::filesystem::remove_all(dir);
  EXPECT_EQ(mem_sums, file_sums);
}

// --- model discipline ----------------------------------------------------------

TEST(ModelDiscipline, SlackRequirementHelper) {
  bsp::MachineParams m;
  m.p = 2;
  m.bsp.v = 64;
  m.em = {1 << 20, 4, 1 << 12, 1.0};
  // v >= k p D log(M/B): with k = 1 this machine needs v >= 2*4*8 = 64.
  EXPECT_EQ(bsp::min_virtual_processors(m, 1), 64u);
  EXPECT_EQ(bsp::min_virtual_processors(m, 2), 128u);
}

TEST(ModelDiscipline, LayoutKeepsGroupsAtLeastD) {
  // The auto-chosen k must leave >= D destination groups so the routing
  // buckets can all be populated (practical slackness).
  SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = 64;
  cfg.machine.em = {1 << 22, 8, 512, 1.0};  // huge M: unconstrained k
  cfg.mu = 128;
  cfg.gamma = 4096;
  const auto layout = SimLayout::compute(cfg, 64);
  EXPECT_GE(layout.num_groups, 8u);
}

TEST(ModelDiscipline, ExplicitKRespected) {
  SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.bsp.v = 64;
  cfg.machine.em = {1 << 22, 4, 512, 1.0};
  cfg.mu = 128;
  cfg.gamma = 4096;
  cfg.k = 5;
  const auto layout = SimLayout::compute(cfg, 64);
  EXPECT_EQ(layout.k, 5u);
  EXPECT_EQ(layout.num_groups, 13u);  // ceil(64/5)
}

}  // namespace
}  // namespace embsp::sim
