// Transport-tier tests: unit tests for the loopback and socket backends,
// the wire framing, the streaming checksum — and the cross-backend parity
// suite, which pins the tentpole guarantee of the distributed simulator:
// same seed, same workload → byte-identical final states, SuperstepCosts,
// IoStats and fault histories on
//   threaded ParSimulator  vs  loopback DistSimulator  vs  socket
//   DistSimulator (full wire protocol over unix-domain sockets).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <thread>

#include "net/frame.hpp"
#include "net/transport.hpp"
#include "obs/span.hpp"
#include "sim/dist_simulator.hpp"
#include "sim/par_simulator.hpp"
#include "test_programs.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "util/serialization.hpp"

namespace embsp::sim {
namespace {

using embsp::testing::BigMessageProgram;
using embsp::testing::IrregularProgram;
using embsp::testing::PrefixSumProgram;
using embsp::testing::RingProgram;

std::vector<std::byte> bytes_of(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

// --- ChecksumStream ---------------------------------------------------------

TEST(ChecksumStream, MatchesContiguousChecksumForAnyFragmentation) {
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = rng.below(300);
    std::vector<std::byte> data(n);
    for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
    const std::uint64_t want = util::checksum64(data);

    util::ChecksumStream cs(n);
    std::size_t off = 0;
    while (off < n) {
      const std::size_t len = std::min<std::size_t>(1 + rng.below(13), n - off);
      cs.update({data.data() + off, len});
      off += len;
    }
    EXPECT_EQ(cs.finish(), want) << "n=" << n;
  }
}

TEST(ChecksumStream, EmptyMatches) {
  util::ChecksumStream cs(0);
  EXPECT_EQ(cs.finish(), util::checksum64({}));
}

// --- Frame encoding ---------------------------------------------------------

TEST(Frame, HeaderRoundTrip) {
  net::FrameHeader h;
  h.kind = net::FrameKind::data;
  h.src = 3;
  h.len = 4096;
  h.checksum = 0xdeadbeefcafef00dULL;
  std::array<std::byte, net::kFrameHeaderBytes> buf;
  net::encode_frame_header(h, buf);
  const auto got = net::decode_frame_header(buf);
  EXPECT_EQ(got.kind, h.kind);
  EXPECT_EQ(got.src, h.src);
  EXPECT_EQ(got.len, h.len);
  EXPECT_EQ(got.checksum, h.checksum);
}

TEST(Frame, BadMagicIsCorrupt) {
  std::array<std::byte, net::kFrameHeaderBytes> buf{};
  EXPECT_THROW(net::decode_frame_header(buf), net::CorruptFrameError);
}

TEST(Frame, UnknownKindAndOversizedLengthAreCorrupt) {
  net::FrameHeader h;
  std::array<std::byte, net::kFrameHeaderBytes> buf;
  net::encode_frame_header(h, buf);
  buf[4] = static_cast<std::byte>(200);  // kind
  EXPECT_THROW(net::decode_frame_header(buf), net::CorruptFrameError);

  h.len = net::kMaxFramePayload + 1;
  net::encode_frame_header(h, buf);
  EXPECT_THROW(net::decode_frame_header(buf), net::CorruptFrameError);
}

TEST(Frame, NetErrorsClassifyOnTheIoTaxonomy) {
  EXPECT_EQ(net::PeerTimeoutError("x").kind(), em::IoError::Kind::transient);
  EXPECT_EQ(net::PeerFailedError("x").kind(), em::IoError::Kind::persistent);
  EXPECT_EQ(net::CorruptFrameError("x").kind(), em::IoError::Kind::corrupt);
}

// --- Transport behavior (parameterized over backends) -----------------------

/// Runs `body(rank, transport)` on one thread per endpoint and rethrows the
/// first failure.
void run_ranks(std::vector<std::unique_ptr<net::Transport>>& eps,
               const std::function<void(std::uint32_t, net::Transport&)>& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(eps.size());
  for (std::uint32_t r = 0; r < eps.size(); ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r, *eps[r]);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::string unix_prefix(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("embsp_net_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

/// Builds a p-endpoint socket mesh by running the handshakes concurrently
/// (each constructor blocks until the full mesh is up).
std::vector<std::unique_ptr<net::Transport>> make_socket_group(
    std::uint32_t p, const std::string& tag) {
  std::vector<std::unique_ptr<net::Transport>> eps(p);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(p);
  for (std::uint32_t r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      try {
        net::SocketConfig cfg;
        cfg.address = unix_prefix(tag);
        cfg.rank = r;
        cfg.peers = p;
        eps[r] = net::make_socket_transport(cfg);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return eps;
}

void exercise_ordering(std::vector<std::unique_ptr<net::Transport>>& eps) {
  const auto p = static_cast<std::uint32_t>(eps.size());
  run_ranks(eps, [p](std::uint32_t me, net::Transport& tp) {
    ASSERT_EQ(tp.rank(), me);
    ASSERT_EQ(tp.size(), p);
    // Phase 1: rank r sends "r->q #i" to every q (self included), i = 0,1.
    // Posted storage must stay alive until exchange() returns (the socket
    // backend serializes fragments straight from it).
    std::vector<std::vector<std::byte>> sent;
    for (std::uint32_t q = 0; q < p; ++q) {
      for (int i = 0; i < 2; ++i) {
        sent.push_back(bytes_of(std::to_string(me) + "->" + std::to_string(q) +
                                " #" + std::to_string(i)));
        tp.post(q, std::span<const std::byte>(sent.back()));
      }
    }
    auto got = tp.exchange();
    ASSERT_EQ(got.size(), p);
    for (std::uint32_t src = 0; src < p; ++src) {
      ASSERT_EQ(got[src].size(), 2u) << "src " << src;
      for (int i = 0; i < 2; ++i) {
        const std::string want = std::to_string(src) + "->" +
                                 std::to_string(me) + " #" + std::to_string(i);
        EXPECT_EQ(got[src][i], bytes_of(want));
      }
    }
    // Phase 2: empty phase — barrier only.
    got = tp.exchange();
    for (std::uint32_t src = 0; src < p; ++src) {
      EXPECT_TRUE(got[src].empty());
    }
    // Phase 3: gathered fragments arrive concatenated.
    const auto a = bytes_of("frag-a|"), b = bytes_of("frag-b");
    const std::span<const std::byte> frags[2] = {a, b};
    tp.post((me + 1) % p, frags);
    got = tp.exchange();
    EXPECT_EQ(got[(me + p - 1) % p].at(0), bytes_of("frag-a|frag-b"));
  });
}

TEST(LoopbackTransport, OrderingBarrierAndFragments) {
  auto eps = net::make_loopback_group(3);
  exercise_ordering(eps);
}

TEST(SocketTransport, OrderingBarrierAndFragments) {
  auto eps = make_socket_group(3, "order");
  exercise_ordering(eps);
}

TEST(SocketTransport, LargePayloadsInterleaveWithoutDeadlock) {
  // All-to-all h-relation far beyond the kernel socket buffers: a transport
  // that sends before reading would deadlock here.
  auto eps = make_socket_group(2, "big");
  run_ranks(eps, [](std::uint32_t me, net::Transport& tp) {
    util::Rng rng(me + 1);
    std::vector<std::byte> big(8u << 20);
    for (auto& b : big) b = static_cast<std::byte>(rng.below(256));
    tp.post(1 - me, std::span<const std::byte>(big));
    auto got = tp.exchange();
    ASSERT_EQ(got[1 - me].size(), 1u);
    util::Rng peer(2 - me);
    const auto& blob = got[1 - me][0];
    ASSERT_EQ(blob.size(), big.size());
    bool ok = true;
    for (const auto& b : blob) {
      ok = ok && b == static_cast<std::byte>(peer.below(256));
    }
    EXPECT_TRUE(ok) << "payload corrupted in flight";
  });
}

TEST(LoopbackTransport, AbortSurfacesAsPeerFailure) {
  auto eps = net::make_loopback_group(2);
  run_ranks(eps, [](std::uint32_t me, net::Transport& tp) {
    if (me == 1) {
      tp.abort("deliberate test failure");
      return;
    }
    EXPECT_THROW(tp.exchange(), net::PeerFailedError);
  });
}

TEST(SocketTransport, AbortSurfacesAsPeerFailure) {
  auto eps = make_socket_group(2, "abort");
  run_ranks(eps, [](std::uint32_t me, net::Transport& tp) {
    if (me == 1) {
      tp.abort("deliberate test failure");
      return;
    }
    try {
      tp.exchange();
      FAIL() << "exchange should have observed the abort";
    } catch (const net::NetError& e) {
      // Abort frame → PeerFailedError carrying the reason; if the peer's
      // close races ahead of the frame, the disconnect is still a typed
      // peer failure, never a hang.
      EXPECT_EQ(e.kind(), em::IoError::Kind::persistent);
    }
  });
}

TEST(LoopbackTransport, MissingPeerTimesOut) {
  auto eps = net::make_loopback_group(2, /*timeout_ms=*/150);
  // Rank 1 never calls exchange().
  EXPECT_THROW(eps[0]->exchange(), net::PeerTimeoutError);
}

TEST(SocketTransport, MissingPeerEndTimesOut) {
  std::vector<std::unique_ptr<net::Transport>> eps(2);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      net::SocketConfig cfg;
      cfg.address = unix_prefix("timeout");
      cfg.rank = r;
      cfg.peers = 2;
      cfg.io_timeout_ms = 200;
      eps[r] = net::make_socket_transport(cfg);
    });
  }
  for (auto& t : threads) t.join();
  // Rank 1 stays silent: rank 0's exchange must name it and give up.
  try {
    eps[0]->exchange();
    FAIL() << "exchange should have timed out";
  } catch (const net::PeerTimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("rank(s) 1"), std::string::npos)
        << e.what();
  }
}

TEST(SocketTransport, SlowSuperstepBetweenPostAndExchangeDoesNotTimeOut) {
  // Regression for the deadline clock: it must start at exchange()/complete(),
  // never at post().  Each rank posts, then "computes" for several multiples
  // of io_timeout_ms while pumping progress() (which is deadline-free and
  // must never throw PeerTimeoutError), and only then exchanges.
  std::vector<std::unique_ptr<net::Transport>> eps(2);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      net::SocketConfig cfg;
      cfg.address = unix_prefix("slow");
      cfg.rank = r;
      cfg.peers = 2;
      cfg.io_timeout_ms = 200;
      eps[r] = net::make_socket_transport(cfg);
    });
  }
  for (auto& t : threads) t.join();
  run_ranks(eps, [](std::uint32_t me, net::Transport& tp) {
    std::vector<std::byte> payload(64u << 10, std::byte{0x5A});
    tp.post(1 - me, std::span<const std::byte>(payload));
    // 3x the timeout elapses between post() and the barrier.
    for (int slice = 0; slice < 12; ++slice) {
      tp.progress();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    auto got = tp.complete();
    ASSERT_EQ(got[1 - me].size(), 1u);
    EXPECT_EQ(got[1 - me][0], payload);
  });
  // The payload fits in the kernel socket buffer, so the progress() pump
  // drained it during the sleep loop: most wire bytes moved outside
  // exchange(), and the in-flight gauge saw the posted frame.
  obs::Recorder rec;
  eps[0]->export_metrics(rec.registry);
  EXPECT_GT(rec.registry.gauge("net.exchange_overlap_ratio"), 0.0);
  EXPECT_LE(rec.registry.gauge("net.exchange_overlap_ratio"), 1.0);
  EXPECT_GT(rec.registry.gauge("net.link.1.max_inflight_bytes"), 0.0);
}

// --- Cross-backend parity ----------------------------------------------------

SimConfig dist_config(std::uint32_t p, std::uint32_t v, std::size_t D,
                      std::size_t B, std::size_t mu, std::size_t gamma) {
  SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.bsp.v = v;
  cfg.machine.em.D = D;
  cfg.machine.em.B = B;
  cfg.machine.em.M = std::max<std::size_t>(D * B, 8 * (mu + B));
  cfg.mu = mu;
  cfg.gamma = gamma;
  return cfg;
}

/// Turns a config into its overlapped variant: double-buffered per-rank
/// group schedule + incremental wire draining.  Paired with the parallel
/// engine and a 2-wide compute pool so the overlap paths actually run.
SimConfig pipelined(SimConfig cfg) {
  cfg.pipeline = true;
  cfg.io_engine = em::IoEngine::parallel;
  cfg.compute_threads = 2;
  return cfg;
}

template <typename T>
std::vector<std::byte> raw_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

struct DistRun {
  std::vector<SimResult> results;                 ///< one per rank
  std::vector<std::vector<std::byte>> states;     ///< rank 0's collected view
};

template <bsp::Program P>
DistRun run_dist(
    const P& prog, SimConfig cfg,
    std::vector<std::unique_ptr<net::Transport>> eps,
    const std::function<typename P::State(std::uint32_t)>& make_state) {
  using State = typename P::State;
  const auto p = static_cast<std::uint32_t>(eps.size());
  const std::uint32_t v = cfg.machine.bsp.v;
  DistRun out;
  out.results.resize(p);
  // Every rank collects all v outputs; ranks must agree, so keep each
  // rank's view and compare below.
  std::vector<std::vector<std::vector<std::byte>>> views(
      p, std::vector<std::vector<std::byte>>(v));
  run_ranks(eps, [&](std::uint32_t me, net::Transport& tp) {
    DistSimulator sim(cfg, tp);
    out.results[me] =
        sim.run<P>(prog, make_state, [&](std::uint32_t pid, State& s) {
          util::Writer w;
          s.serialize(w);
          views[me][pid] = w.take();
        });
  });
  for (std::uint32_t r = 1; r < p; ++r) {
    EXPECT_EQ(views[r], views[0]) << "rank " << r << " collected a different "
                                  << "view of the final states";
    EXPECT_EQ(raw_bytes(out.results[r].total_io),
              raw_bytes(out.results[0].total_io));
  }
  out.states = std::move(views[0]);
  return out;
}

void expect_same_costs(const bsp::RunCosts& a, const bsp::RunCosts& b) {
  ASSERT_EQ(a.supersteps.size(), b.supersteps.size());
  for (std::size_t i = 0; i < a.supersteps.size(); ++i) {
    EXPECT_EQ(raw_bytes(a.supersteps[i]), raw_bytes(b.supersteps[i]))
        << "superstep " << i;
  }
}

void expect_same_result(const SimResult& par, const SimResult& dist) {
  expect_same_costs(par.costs, dist.costs);
  EXPECT_EQ(raw_bytes(par.total_io), raw_bytes(dist.total_io));
  ASSERT_EQ(par.per_proc_io.size(), dist.per_proc_io.size());
  for (std::size_t i = 0; i < par.per_proc_io.size(); ++i) {
    EXPECT_EQ(raw_bytes(par.per_proc_io[i]), raw_bytes(dist.per_proc_io[i]))
        << "processor " << i;
  }
  EXPECT_EQ(raw_bytes(par.phase_io), raw_bytes(dist.phase_io));
  EXPECT_EQ(raw_bytes(par.routing_stats), raw_bytes(dist.routing_stats));
  EXPECT_EQ(par.group_size, dist.group_size);
  EXPECT_EQ(par.max_tracks_per_disk, dist.max_tracks_per_disk);
  EXPECT_EQ(par.real_comm_bytes, dist.real_comm_bytes);
  EXPECT_EQ(raw_bytes(par.recovery.faults), raw_bytes(dist.recovery.faults));
  EXPECT_EQ(par.recovery.io_retries, dist.recovery.io_retries);
  EXPECT_EQ(par.recovery.io_giveups, dist.recovery.io_giveups);
}

/// The tentpole assertion: ParSimulator (threads + mailboxes), DistSimulator
/// over loopback, and DistSimulator over real sockets produce byte-identical
/// everything.
template <bsp::Program P>
void expect_three_way_parity(
    const P& prog, SimConfig cfg,
    const std::function<typename P::State(std::uint32_t)>& make_state,
    const std::string& tag) {
  using State = typename P::State;
  const std::uint32_t v = cfg.machine.bsp.v;
  const std::uint32_t p = cfg.machine.p;

  std::vector<std::vector<std::byte>> par_states(v);
  ParSimulator par(cfg);
  auto par_result =
      par.run<P>(prog, make_state, [&](std::uint32_t pid, State& s) {
        util::Writer w;
        s.serialize(w);
        par_states[pid] = w.take();
      });

  auto loop = run_dist(prog, cfg, net::make_loopback_group(p), make_state);
  EXPECT_EQ(loop.states, par_states) << "loopback states diverged";
  for (std::uint32_t r = 0; r < p; ++r) {
    expect_same_result(par_result, loop.results[r]);
  }

  auto sock = run_dist(prog, cfg, make_socket_group(p, tag), make_state);
  EXPECT_EQ(sock.states, par_states) << "socket states diverged";
  for (std::uint32_t r = 0; r < p; ++r) {
    expect_same_result(par_result, sock.results[r]);
  }
}

TEST(DistParity, PrefixSumFourRanks) {
  PrefixSumProgram prog;
  expect_three_way_parity(prog, dist_config(4, 32, 2, 128, 64, 1400),
                          [](std::uint32_t pid) {
                            PrefixSumProgram::State s;
                            s.value = pid * 5 + 2;
                            return s;
                          },
                          "prefix");
}

TEST(DistParity, RingAcrossRanks) {
  RingProgram prog;
  prog.rounds = 6;
  expect_three_way_parity(prog, dist_config(4, 8, 2, 128, 2048, 4096),
                          [](std::uint32_t pid) {
                            RingProgram::State s;
                            s.data = {pid};
                            return s;
                          },
                          "ring");
}

TEST(DistParity, IrregularTraffic) {
  IrregularProgram prog;
  expect_three_way_parity(
      prog, dist_config(3, 12, 2, 128, 64, 4096),
      [](std::uint32_t) { return IrregularProgram::State{}; }, "irregular");
}

TEST(DistParity, BigMessagesTwoRanks) {
  BigMessageProgram prog;
  prog.words = 1500;
  expect_three_way_parity(
      prog, dist_config(2, 4, 2, 128, 64, 14000),
      [](std::uint32_t) { return BigMessageProgram::State{}; }, "bigmsg");
}

TEST(DistParity, LegacyCopyingPath) {
  IrregularProgram prog;
  auto cfg = dist_config(3, 12, 2, 128, 64, 4096);
  cfg.zero_copy = false;
  expect_three_way_parity(
      prog, cfg, [](std::uint32_t) { return IrregularProgram::State{}; },
      "copying");
}

TEST(DistParity, DeterministicRouting) {
  IrregularProgram prog;
  auto cfg = dist_config(4, 16, 2, 128, 64, 4096);
  cfg.routing = RoutingMode::deterministic;
  expect_three_way_parity(
      prog, cfg, [](std::uint32_t) { return IrregularProgram::State{}; },
      "rr");
}

TEST(DistParity, AutomaticRouting) {
  IrregularProgram prog;
  auto cfg = dist_config(2, 8, 2, 128, 64, 4096);
  cfg.routing = RoutingMode::automatic;
  expect_three_way_parity(
      prog, cfg, [](std::uint32_t) { return IrregularProgram::State{}; },
      "auto");
}

TEST(DistParity, FaultScheduleMatchesUnderInjection) {
  // Transient-only injection, absorbed by per-transfer retry: the byte
  // identity extends to the fault history — both simulators key the
  // deterministic schedule by machine-wide drive index and call index, so
  // the same calls draw the same faults.
  IrregularProgram prog;
  auto cfg = dist_config(2, 8, 2, 128, 64, 4096);
  cfg.faults.seed = cfg.seed;
  cfg.faults.read_error_rate = 0.05;
  cfg.faults.write_error_rate = 0.05;
  cfg.block_checksums = true;
  expect_three_way_parity(
      prog, cfg, [](std::uint32_t) { return IrregularProgram::State{}; },
      "faults");
}

TEST(DistParity, PipelinedPrefixSum) {
  // The overlapped schedule (ctx prefetch + write-behind + progress()-pumped
  // wire) changes only timing, never content: the three-way byte identity
  // must hold with pipelining on.  ParSimulator runs its own pipelined
  // worker schedule under the same config, so the layouts match too.
  PrefixSumProgram prog;
  expect_three_way_parity(prog,
                          pipelined(dist_config(4, 32, 2, 128, 64, 1400)),
                          [](std::uint32_t pid) {
                            PrefixSumProgram::State s;
                            s.value = pid * 5 + 2;
                            return s;
                          },
                          "pipeprefix");
}

TEST(DistParity, PipelinedIrregularTraffic) {
  IrregularProgram prog;
  expect_three_way_parity(
      prog, pipelined(dist_config(3, 12, 2, 128, 64, 4096)),
      [](std::uint32_t) { return IrregularProgram::State{}; }, "pipeirr");
}

TEST(DistParity, PipelinedMatchesBlockingSchedule) {
  // Direct blocking-vs-overlapped comparison on the SAME engine: identical
  // final states, costs, IoStats and phase attribution.  (Both runs use the
  // parallel engine so the only varied knob is the schedule itself.)
  IrregularProgram prog;
  auto cfg = dist_config(3, 12, 2, 128, 64, 4096);
  cfg.io_engine = em::IoEngine::parallel;
  auto make = [](std::uint32_t) { return IrregularProgram::State{}; };
  auto plain = run_dist(prog, cfg, net::make_loopback_group(3), make);
  auto piped = run_dist(prog, pipelined(cfg), net::make_loopback_group(3),
                        make);
  EXPECT_EQ(piped.states, plain.states) << "pipelined states diverged";
  for (std::uint32_t r = 0; r < 3; ++r) {
    expect_same_result(plain.results[r], piped.results[r]);
  }
}

TEST(DistParity, PipelinedFaultScheduleMatchesUnderInjection) {
  // The overlapped schedule mirrors the ParSimulator's pipelined worker
  // submission order exactly, so the per-drive fault schedule — keyed by
  // submission index — stays aligned across all three backends.
  IrregularProgram prog;
  auto cfg = pipelined(dist_config(2, 8, 2, 128, 64, 4096));
  cfg.faults.seed = cfg.seed;
  cfg.faults.read_error_rate = 0.05;
  cfg.faults.write_error_rate = 0.05;
  cfg.block_checksums = true;
  expect_three_way_parity(
      prog, cfg, [](std::uint32_t) { return IrregularProgram::State{}; },
      "pipefaults");
}

TEST(DistSimulatorConfig, RejectsSharedMemoryOnlyFeatures) {
  auto eps = net::make_loopback_group(2);
  auto cfg = dist_config(2, 8, 2, 128, 64, 1024);
  {
    auto bad = cfg;
    bad.checkpoint.dir = "/tmp/nope";
    EXPECT_THROW(DistSimulator(bad, *eps[0]), std::invalid_argument);
  }
  {
    auto bad = cfg;
    bad.superstep_recovery = true;
    EXPECT_THROW(DistSimulator(bad, *eps[0]), std::invalid_argument);
  }
  {
    // Pipelining is per-rank-private and composes with a transport now.
    auto good = pipelined(cfg);
    EXPECT_NO_THROW(DistSimulator(good, *eps[0]));
  }
  {
    auto bad = cfg;
    bad.machine.p = 4;  // transport is only 2 wide
    bad.machine.bsp.v = 16;
    EXPECT_THROW(DistSimulator(bad, *eps[0]), std::invalid_argument);
  }
}

TEST(DistSimulator, ExportsTransportMetrics) {
  PrefixSumProgram prog;
  auto cfg = dist_config(2, 8, 2, 128, 64, 1024);
  obs::Recorder recorder;
  auto eps = net::make_loopback_group(2);
  std::vector<std::exception_ptr> errors(2);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      try {
        auto local = cfg;
        if (r == 0) local.recorder = &recorder;
        DistSimulator sim(local, *eps[r]);
        sim.run<PrefixSumProgram>(
            prog,
            [](std::uint32_t pid) {
              PrefixSumProgram::State s;
              s.value = pid;
              return s;
            },
            [](std::uint32_t, PrefixSumProgram::State&) {});
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  auto& reg = recorder.registry;
  EXPECT_GT(reg.counter("net.exchanges"), 0u);
  EXPECT_GT(reg.counter("net.link.1.bytes_sent"), 0u);
  EXPECT_GT(reg.counter("net.link.1.frames_sent"), 0u);
  EXPECT_GT(reg.histogram("net.link.1.send_bytes").count(), 0u);
  EXPECT_GT(reg.histogram("net.exchange_wait_ns").count(), 0u);
}

TEST(DistSimulator, ExportsOverlapMetricsUnderPipeline) {
  // Per-link in-flight gauges and the send-side overlap ratio land in the
  // Registry alongside the existing counters.  On loopback post() IS the
  // transmission, so every wire byte drains before the barrier: ratio 1.0.
  PrefixSumProgram prog;
  auto cfg = pipelined(dist_config(2, 8, 2, 128, 64, 1024));
  obs::Recorder recorder;
  auto eps = net::make_loopback_group(2);
  std::vector<std::exception_ptr> errors(2);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      try {
        auto local = cfg;
        if (r == 0) local.recorder = &recorder;
        DistSimulator sim(local, *eps[r]);
        sim.run<PrefixSumProgram>(
            prog,
            [](std::uint32_t pid) {
              PrefixSumProgram::State s;
              s.value = pid;
              return s;
            },
            [](std::uint32_t, PrefixSumProgram::State&) {});
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  auto& reg = recorder.registry;
  EXPECT_GT(reg.counter("net.exchanges"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("net.exchange_overlap_ratio"), 1.0);
  EXPECT_GT(reg.gauge("net.link.1.max_inflight_bytes"), 0.0);
  EXPECT_GT(reg.histogram("net.link.1.send_bytes").count(), 0u);
  EXPECT_GT(reg.histogram("net.exchange_wait_ns").count(), 0u);
}

}  // namespace
}  // namespace embsp::sim
