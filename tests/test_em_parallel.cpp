// Concurrency tests for the parallel I/O engine (ParallelDiskArray).
//
// These tests are built into the `sanitize` ctest label: run them under
// ThreadSanitizer (cmake --preset tsan) to validate the engine's
// synchronization, and under ASan/UBSan (cmake --preset asan) for memory
// discipline.  They hammer the engine with mixed track reads/writes both
// directly and through the simulator path (ContextStore / MessageStore /
// LinkedBuckets all batching through parallel I/Os), and assert that the
// serial and parallel engines produce byte-identical disk images.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "em/parallel_disk_array.hpp"
#include "sim/par_simulator.hpp"
#include "sim/seq_simulator.hpp"
#include "test_programs.hpp"
#include "util/rng.hpp"

namespace embsp::em {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> pattern_block(std::size_t size, std::uint64_t tag) {
  std::vector<std::byte> b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::byte>(
        static_cast<std::uint8_t>(tag * 131 + i * 7 + 3));
  }
  return b;
}

TEST(ParallelDiskArray, RoundTripMatchesPattern) {
  constexpr std::size_t kD = 4, kB = 256;
  ParallelDiskArray arr(kD, kB);
  std::vector<std::vector<std::byte>> blocks;
  std::vector<WriteOp> writes;
  for (std::uint32_t d = 0; d < kD; ++d) {
    blocks.push_back(pattern_block(kB, d + 1));
  }
  for (std::uint32_t d = 0; d < kD; ++d) {
    writes.push_back({d, 7, blocks[d]});
  }
  arr.parallel_write(writes);

  std::vector<std::byte> buf(kD * kB);
  std::vector<ReadOp> reads;
  for (std::uint32_t d = 0; d < kD; ++d) {
    reads.push_back(
        {d, 7, std::span<std::byte>(buf).subspan(d * kB, kB)});
  }
  arr.parallel_read(reads);
  for (std::uint32_t d = 0; d < kD; ++d) {
    EXPECT_EQ(std::memcmp(buf.data() + d * kB, blocks[d].data(), kB), 0)
        << "disk " << d;
  }
  EXPECT_EQ(arr.stats().parallel_ios, 2u);
  EXPECT_EQ(arr.engine_stats().max_queue_depth, kD);
  for (std::uint32_t d = 0; d < kD; ++d) {
    EXPECT_EQ(arr.engine_stats().per_disk[d].ops, 2u) << "disk " << d;
    EXPECT_EQ(arr.engine_stats().per_disk[d].bytes, 2 * kB) << "disk " << d;
  }
}

TEST(ParallelDiskArray, MixedReadWriteHammer) {
  // The TSan workhorse: many full- and partial-width operations with
  // verified contents, driving every worker through thousands of
  // dispatch/join cycles.
  constexpr std::size_t kD = 8, kB = 128, kTracks = 32;
  ParallelDiskArray arr(kD, kB);
  util::Rng rng(99);
  // shadow[d][t] = tag of the block last written there (0 = never).
  std::vector<std::vector<std::uint64_t>> shadow(
      kD, std::vector<std::uint64_t>(kTracks, 0));
  std::uint64_t next_tag = 1;
  std::vector<std::byte> buf(kD * kB);
  std::vector<std::vector<std::byte>> pending;
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t width = 1 + rng.below(kD);
    std::vector<std::uint32_t> disks(kD);
    for (std::uint32_t d = 0; d < kD; ++d) disks[d] = d;
    for (std::size_t i = 0; i < width; ++i) {
      std::swap(disks[i], disks[i + rng.below(kD - i)]);
    }
    if (iter % 2 == 0) {
      std::vector<WriteOp> ops;
      pending.clear();
      for (std::size_t i = 0; i < width; ++i) {
        const std::uint64_t track = rng.below(kTracks);
        const std::uint64_t tag = next_tag++;
        pending.push_back(pattern_block(kB, tag));
        shadow[disks[i]][track] = tag;
        ops.push_back({disks[i], track, pending.back()});
      }
      arr.parallel_write(ops);
    } else {
      std::vector<ReadOp> ops;
      std::vector<std::pair<std::uint32_t, std::uint64_t>> what;
      for (std::size_t i = 0; i < width; ++i) {
        const std::uint64_t track = rng.below(kTracks);
        ops.push_back({disks[i], track,
                       std::span<std::byte>(buf).subspan(i * kB, kB)});
        what.emplace_back(disks[i], track);
      }
      arr.parallel_read(ops);
      for (std::size_t i = 0; i < width; ++i) {
        const auto [d, t] = what[i];
        const auto got = std::span<const std::byte>(buf).subspan(i * kB, kB);
        if (shadow[d][t] == 0) {
          for (auto c : got) ASSERT_EQ(c, std::byte{0});
        } else {
          const auto want = pattern_block(kB, shadow[d][t]);
          ASSERT_EQ(std::memcmp(got.data(), want.data(), kB), 0)
              << "disk " << d << " track " << t;
        }
      }
    }
  }
  arr.sync();
  EXPECT_EQ(arr.engine_stats().total_ops(),
            arr.stats().blocks_read + arr.stats().blocks_written);
}

TEST(ParallelDiskArray, FileBackendHammer) {
  // Same engine over pread/pwrite file backends — exercises concurrent
  // positioned I/O on real file descriptors.
  constexpr std::size_t kD = 4, kB = 512;
  const auto dir = fs::temp_directory_path();
  ParallelDiskArray arr(kD, kB, [&](std::size_t d) {
    return make_file_backend(
        (dir / ("embsp_par_hammer_" + std::to_string(d) + ".bin")).string());
  });
  std::vector<std::vector<std::byte>> blocks;
  for (std::uint32_t d = 0; d < kD; ++d) {
    blocks.push_back(pattern_block(kB, 40 + d));
  }
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<WriteOp> writes;
    for (std::uint32_t d = 0; d < kD; ++d) {
      writes.push_back({d, static_cast<std::uint64_t>(iter), blocks[d]});
    }
    arr.parallel_write(writes);
    std::vector<std::byte> buf(kD * kB);
    std::vector<ReadOp> reads;
    for (std::uint32_t d = 0; d < kD; ++d) {
      reads.push_back({d, static_cast<std::uint64_t>(iter),
                       std::span<std::byte>(buf).subspan(d * kB, kB)});
    }
    arr.parallel_read(reads);
    for (std::uint32_t d = 0; d < kD; ++d) {
      ASSERT_EQ(std::memcmp(buf.data() + d * kB, blocks[d].data(), kB), 0);
    }
  }
  arr.sync();
  EXPECT_EQ(arr.engine_stats().max_queue_depth, kD);
}

TEST(ParallelDiskArray, WorkerErrorsPropagateAndArrayStaysUsable) {
  ParallelDiskArray arr(2, 64, nullptr, /*capacity_tracks_per_disk=*/4);
  auto b = pattern_block(64, 1);
  std::vector<WriteOp> bad{{0u, 99u, b}};  // beyond capacity: throws on worker
  EXPECT_THROW(arr.parallel_write(bad), std::out_of_range);
  std::vector<WriteOp> ok{{0u, 1u, b}, {1u, 2u, b}};
  arr.parallel_write(ok);
  std::vector<std::byte> out(64);
  std::vector<ReadOp> rd{{0u, 1u, out}};
  arr.parallel_read(rd);
  EXPECT_EQ(out, b);
}

// --- Simulator-path tests ---------------------------------------------------

using embsp::testing::IrregularProgram;

sim::SimConfig engine_config(em::IoEngine engine, std::uint32_t p,
                             std::uint32_t v) {
  sim::SimConfig cfg;
  cfg.machine.p = p;
  cfg.machine.bsp.v = v;
  cfg.machine.em.D = 4;
  cfg.machine.em.B = 128;
  cfg.machine.em.M = 1 << 20;
  cfg.mu = 64;
  cfg.gamma = 4096;
  cfg.io_engine = engine;
  return cfg;
}

TEST(ParallelEngine, SeqSimulatorHammer) {
  // Drive the full simulator path (ContextStore, MessageStore,
  // LinkedBuckets, SimulateRouting) through the worker pool.
  auto cfg = engine_config(em::IoEngine::parallel, 1, 16);
  sim::SeqSimulator simr(cfg);
  std::vector<std::uint64_t> sums;
  auto result = simr.run<IrregularProgram>(
      IrregularProgram{}, [](std::uint32_t) { return IrregularProgram::State{}; },
      [&](std::uint32_t, IrregularProgram::State& s) {
        sums.push_back(s.checksum);
      });
  EXPECT_EQ(sums.size(), 16u);
  EXPECT_GT(result.total_io.parallel_ios, 0u);
  const auto& eng = simr.disks().engine_stats();
  EXPECT_EQ(eng.max_queue_depth, 4u);  // all D transfers issued per I/O
  EXPECT_EQ(eng.total_ops(),
            result.total_io.blocks_read + result.total_io.blocks_written);
}

TEST(ParallelEngine, ParSimulatorHammer) {
  // p simulator threads, each owning a private worker pool.
  auto cfg = engine_config(em::IoEngine::parallel, 2, 16);
  sim::ParSimulator simr(cfg);
  std::vector<std::uint64_t> sums;
  simr.run<IrregularProgram>(
      IrregularProgram{}, [](std::uint32_t) { return IrregularProgram::State{}; },
      [&](std::uint32_t, IrregularProgram::State& s) {
        sums.push_back(s.checksum);
      });
  EXPECT_EQ(sums.size(), 16u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(simr.disks(i).engine_stats().max_queue_depth, 4u);
  }
}

TEST(ParallelEngine, SerialAndParallelDiskImagesAreByteIdentical) {
  // For a fixed seed the two engines must leave bit-for-bit identical
  // backing files: the engine changes only wall-clock overlap, never
  // placement, ordering of visibility, or content.
  const auto dir = fs::temp_directory_path();
  auto files_for = [&](const char* variant, std::size_t d) {
    return (dir / ("embsp_det_" + std::string(variant) + "_" +
                   std::to_string(d) + ".bin"))
        .string();
  };
  std::vector<std::uint64_t> sums[2];
  for (int which = 0; which < 2; ++which) {
    const char* variant = which == 0 ? "serial" : "parallel";
    // keep=true preserves pre-existing files (no truncation), so scrub any
    // leftovers from an interrupted earlier run before comparing images.
    for (std::size_t d = 0; d < 4; ++d) fs::remove(files_for(variant, d));
    auto cfg = engine_config(
        which == 0 ? em::IoEngine::serial : em::IoEngine::parallel, 1, 16);
    sim::SeqSimulator simr(cfg, [&](std::size_t d) {
      return em::make_file_backend(files_for(variant, d), /*keep=*/true);
    });
    simr.run<IrregularProgram>(
        IrregularProgram{},
        [](std::uint32_t) { return IrregularProgram::State{}; },
        [&](std::uint32_t, IrregularProgram::State& s) {
          sums[which].push_back(s.checksum);
        });
  }
  EXPECT_EQ(sums[0], sums[1]);
  for (std::size_t d = 0; d < 4; ++d) {
    const auto a = files_for("serial", d);
    const auto b = files_for("parallel", d);
    ASSERT_TRUE(fs::exists(a)) << a;
    ASSERT_TRUE(fs::exists(b)) << b;
    EXPECT_EQ(fs::file_size(a), fs::file_size(b)) << "disk " << d;
    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    std::vector<char> ca((std::istreambuf_iterator<char>(fa)),
                         std::istreambuf_iterator<char>());
    std::vector<char> cb((std::istreambuf_iterator<char>(fb)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(ca, cb) << "disk image " << d << " differs between engines";
    fs::remove(a);
    fs::remove(b);
  }
}

}  // namespace
}  // namespace embsp::em
