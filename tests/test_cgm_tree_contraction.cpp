// Tree contraction / expression tree evaluation (Table 1, Group C).
#include <gtest/gtest.h>

#include "cgm/graph_tree_contraction.hpp"
#include "util/rng.hpp"

namespace embsp::cgm {
namespace {

/// Random full binary expression tree with `internal` internal nodes
/// (2*internal + 1 nodes total): repeatedly split a random leaf.
ExpressionTree random_expression_tree(std::uint64_t internal,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  ExpressionTree t;
  t.parent = {0};
  t.op = {ExprOp::kAdd};
  t.leaf_value = {rng.next() % 1000};
  t.is_leaf = {1};
  std::vector<std::uint64_t> leaves{0};
  for (std::uint64_t s = 0; s < internal; ++s) {
    const auto pick = static_cast<std::size_t>(rng.below(leaves.size()));
    const std::uint64_t u = leaves[pick];
    leaves[pick] = leaves.back();
    leaves.pop_back();
    t.is_leaf[u] = 0;
    t.op[u] = (rng.next() & 1) ? ExprOp::kMul : ExprOp::kAdd;
    for (int c = 0; c < 2; ++c) {
      const std::uint64_t id = t.parent.size();
      t.parent.push_back(u);
      t.op.push_back(ExprOp::kAdd);
      t.leaf_value.push_back(rng.next() % 1000);
      t.is_leaf.push_back(1);
      leaves.push_back(id);
    }
  }
  return t;
}

TEST(TreeContraction, LinFnAlgebra) {
  const LinFn f{3, 5};     // 3x + 5
  const LinFn g{2, 7};     // 2x + 7
  EXPECT_EQ(f(10), 35u);
  const LinFn fg = f.after(g);  // 3(2x+7)+5 = 6x + 26
  EXPECT_EQ(fg.a, 6u);
  EXPECT_EQ(fg.b, 26u);
  EXPECT_EQ(LinFn::apply_op(ExprOp::kAdd, 9)(4), 13u);
  EXPECT_EQ(LinFn::apply_op(ExprOp::kMul, 9)(4), 36u);
}

TEST(TreeContraction, TinyTreeByHand) {
  // (2 + 3) * 4
  ExpressionTree t;
  t.parent = {0, 0, 0, 1, 1};
  t.op = {ExprOp::kMul, ExprOp::kAdd, ExprOp::kAdd, ExprOp::kAdd,
          ExprOp::kAdd};
  t.leaf_value = {0, 0, 4, 2, 3};
  t.is_leaf = {0, 0, 1, 1, 1};
  auto want = evaluate_expression_tree(t);
  EXPECT_EQ(want[0], 20u);
  EXPECT_EQ(want[1], 5u);

  DirectExec exec;
  auto out = cgm_tree_contraction(exec, t, 2);
  EXPECT_EQ(out.value, want);
}

class TreeContractionSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(TreeContractionSweep, AllSubtreeValuesCorrect) {
  const auto [internal, v] = GetParam();
  auto t = random_expression_tree(internal, 37 * internal + v);
  auto want = evaluate_expression_tree(t);
  DirectExec exec;
  auto out = cgm_tree_contraction(exec, t, v);
  EXPECT_EQ(out.value, want);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TreeContractionSweep,
    ::testing::Values(std::pair<std::size_t, std::uint32_t>{1, 1},
                      std::pair<std::size_t, std::uint32_t>{5, 2},
                      std::pair<std::size_t, std::uint32_t>{100, 4},
                      std::pair<std::size_t, std::uint32_t>{500, 8},
                      std::pair<std::size_t, std::uint32_t>{2000, 16}),
    [](const auto& info) {
      return "i" + std::to_string(info.param.first) + "v" +
             std::to_string(info.param.second);
    });

TEST(TreeContraction, DeepChainTree) {
  // A maximally unbalanced tree: every internal node has one leaf child —
  // the pure COMPRESS stress case.
  ExpressionTree t;
  const std::uint64_t depth = 300;
  util::Rng rng(9);
  // Node 0 is the root; build down a left spine.
  t.parent = {0};
  t.op = {ExprOp::kAdd};
  t.leaf_value = {0};
  t.is_leaf = {0};
  std::uint64_t spine = 0;
  for (std::uint64_t d = 0; d < depth; ++d) {
    t.parent.push_back(spine);
    t.op.push_back(ExprOp::kAdd);
    t.leaf_value.push_back(rng.next() % 100);
    t.is_leaf.push_back(1);
    const std::uint64_t next = t.parent.size();
    t.parent.push_back(spine);
    t.op.push_back((rng.next() & 1) ? ExprOp::kMul : ExprOp::kAdd);
    t.leaf_value.push_back(0);
    t.is_leaf.push_back(d + 1 == depth ? 1 : 0);
    if (d + 1 == depth) t.leaf_value.back() = rng.next() % 100;
    spine = next;
  }
  auto want = evaluate_expression_tree(t);
  DirectExec exec;
  auto out = cgm_tree_contraction(exec, t, 8);
  EXPECT_EQ(out.value, want);
}

TEST(TreeContraction, OnEmMachines) {
  auto t = random_expression_tree(400, 41);
  auto want = evaluate_expression_tree(t);
  sim::SimConfig cfg;
  cfg.machine.p = 1;
  cfg.machine.em = {1 << 22, 4, 256, 1.0};
  SeqEmExec seq(cfg);
  EXPECT_EQ(cgm_tree_contraction(seq, t, 8).value, want);
  sim::SimConfig pcfg;
  pcfg.machine.p = 4;
  pcfg.machine.em = {1 << 22, 2, 256, 1.0};
  ParEmExec par(pcfg);
  EXPECT_EQ(cgm_tree_contraction(par, t, 8).value, want);
}

TEST(TreeContraction, LambdaLogarithmic) {
  auto t = random_expression_tree(4000, 43);
  DirectExec exec;
  auto out = cgm_tree_contraction(exec, t, 16);
  // 7 supersteps per contraction round, O(log) rounds, + gather + expand.
  EXPECT_LT(out.exec.lambda, 500u);
  EXPECT_EQ(out.value, evaluate_expression_tree(t));
}

}  // namespace
}  // namespace embsp::cgm
